#include "mesh.hh"

#include <algorithm>
#include <deque>

#include "common/logging.hh"

namespace ouro
{

namespace
{

/** Table entries carry RouteMeta priced with the table's NocParams;
 *  a mesh may only share a table whose pricing parameters agree. */
bool
samePricingParams(const NocParams &a, const NocParams &b)
{
    return a.linkBitsPerCycle == b.linkBitsPerCycle &&
           a.clockHz == b.clockHz &&
           a.routerLatency == b.routerLatency &&
           a.hopEnergyPerBit == b.hopEnergyPerBit &&
           a.interDiePenalty == b.interDiePenalty &&
           a.dieCrossingEnergyPerBit == b.dieCrossingEnergyPerBit;
}

} // namespace

MeshNoc::MeshNoc(const WaferGeometry &geom, const NocParams &params,
                 const DefectMap *defects,
                 std::shared_ptr<const CleanRouteTable> clean_routes)
    : geom_(geom), params_(params), defects_(defects),
      cleanRoutes_(std::move(clean_routes))
{
    if (cleanRoutes_) {
        const WaferGeometry &tg = cleanRoutes_->geometry();
        ouroAssert(tg.rows() == geom_.rows() &&
                           tg.cols() == geom_.cols(),
                   "MeshNoc: shared route table built for a ",
                   tg.rows(), "x", tg.cols(),
                   " mesh, not this geometry");
        ouroAssert(samePricingParams(cleanRoutes_->params(), params_),
                   "MeshNoc: shared route table priced with "
                   "different NocParams than this mesh");
    }
}

void
MeshNoc::failLink(CoreCoord from, LinkDir dir)
{
    failedLinks_.insert({geom_.coreIndex(from), dir});
    // Cached paths may traverse the newly failed link.
    invalidateRoutes();
}

void
MeshNoc::invalidateRoutes() const
{
    // Shared clean routes are immutable and stay; only this mesh's
    // overlay and its validation memo are stale (clean routes get
    // revalidated lazily against the new fault state).
    routeCache_.clear();
    sharedOk_.clear();
}

bool
MeshNoc::linkFailed(CoreCoord from, LinkDir dir) const
{
    return failedLinks_.count({geom_.coreIndex(from), dir}) > 0;
}

bool
MeshNoc::blocked(CoreCoord c) const
{
    return defects_ && defects_->defective(c);
}

LinkDir
MeshNoc::stepDir(CoreCoord from, CoreCoord to)
{
    if (to.row + 1 == from.row)
        return LinkDir::North;
    if (to.row == from.row + 1)
        return LinkDir::South;
    if (to.col == from.col + 1)
        return LinkDir::East;
    if (to.col + 1 == from.col)
        return LinkDir::West;
    panic("stepDir: cores not adjacent");
}

bool
MeshNoc::stepAllowed(CoreCoord from, CoreCoord to) const
{
    if (!geom_.contains(to))
        return false;
    if (linkFailed(from, stepDir(from, to)))
        return false;
    return true;
}

std::vector<CoreCoord>
MeshNoc::routeDimOrder(CoreCoord src, CoreCoord dst, bool x_first) const
{
    std::vector<CoreCoord> path{src};
    CoreCoord cur = src;
    auto advance = [&](bool horizontal) -> bool {
        while (horizontal ? cur.col != dst.col : cur.row != dst.row) {
            CoreCoord next = cur;
            if (horizontal)
                next.col += dst.col > cur.col ? 1 : -1;
            else
                next.row += dst.row > cur.row ? 1 : -1;
            // Intermediate hops may not pass through defective cores;
            // the destination itself is allowed (KV-recompute case is
            // handled by higher layers).
            const bool is_dst = next == dst;
            if (!stepAllowed(cur, next) || (!is_dst && blocked(next)))
                return false;
            cur = next;
            path.push_back(cur);
        }
        return true;
    };
    const bool ok = x_first ? (advance(true) && advance(false))
                            : (advance(false) && advance(true));
    if (!ok || !(cur == dst))
        return {};
    return path;
}

std::vector<CoreCoord>
MeshNoc::routeBfs(CoreCoord src, CoreCoord dst) const
{
    // Fallback breadth-first search for heavily faulted regions.
    const std::uint64_t n = geom_.numCores();
    std::vector<std::int64_t> prev(n, -1);
    std::deque<CoreCoord> queue{src};
    prev[geom_.coreIndex(src)] =
        static_cast<std::int64_t>(geom_.coreIndex(src));
    while (!queue.empty()) {
        const CoreCoord cur = queue.front();
        queue.pop_front();
        if (cur == dst)
            break;
        const std::int64_t cur_idx =
            static_cast<std::int64_t>(geom_.coreIndex(cur));
        const CoreCoord neighbours[4] = {
            {cur.row > 0 ? cur.row - 1 : cur.row, cur.col},
            {cur.row + 1, cur.col},
            {cur.row, cur.col + 1},
            {cur.row, cur.col > 0 ? cur.col - 1 : cur.col},
        };
        for (const CoreCoord &next : neighbours) {
            if (next == cur || !geom_.contains(next))
                continue;
            if (!stepAllowed(cur, next))
                continue;
            if (!(next == dst) && blocked(next))
                continue;
            const auto next_idx = geom_.coreIndex(next);
            if (prev[next_idx] >= 0)
                continue;
            prev[next_idx] = cur_idx;
            queue.push_back(next);
        }
    }
    const auto dst_idx = geom_.coreIndex(dst);
    if (prev[dst_idx] < 0)
        return {};
    std::vector<CoreCoord> path;
    CoreCoord cur = dst;
    while (!(cur == src)) {
        path.push_back(cur);
        cur = geom_.coreAt(
                static_cast<std::uint64_t>(prev[geom_.coreIndex(cur)]));
    }
    path.push_back(src);
    std::reverse(path.begin(), path.end());
    return path;
}

std::vector<CoreCoord>
MeshNoc::routeUncached(CoreCoord src, CoreCoord dst) const
{
    ouroAssert(geom_.contains(src) && geom_.contains(dst),
               "route: endpoint off wafer");
    if (src == dst)
        return {src};
    // Fast path: XY, then YX, then full BFS around faults.
    auto path = routeDimOrder(src, dst, true);
    if (path.empty())
        path = routeDimOrder(src, dst, false);
    if (path.empty())
        path = routeBfs(src, dst);
    return path;
}

bool
MeshNoc::cleanRouteValid(const std::vector<CoreCoord> &path) const
{
    if (!defects_ && failedLinks_.empty())
        return true;
    for (std::size_t i = 1; i < path.size(); ++i) {
        if (linkFailed(path[i - 1], stepDir(path[i - 1], path[i])))
            return false;
        // Intermediate hops only: routes may end at a defective core
        // (the router's rule), so the last hop skips the core check.
        if (i + 1 < path.size() && blocked(path[i]))
            return false;
    }
    return true;
}

RouteMeta
MeshNoc::buildMeta(const std::vector<CoreCoord> &path) const
{
    // NOTE: every expression here must stay identical to the walk
    // code (transferCost / addFlow oracle paths) - the summaries are
    // the walks' results cached, and the bit-identity contract
    // depends on computing them with the same arithmetic.
    RouteMeta meta;
    if (path.size() < 2)
        return meta; // self-route or unroutable: nothing to price
    meta.hops = static_cast<std::uint32_t>(path.size() - 1);
    meta.slots.reserve(path.size() - 1);
    for (std::size_t i = 1; i < path.size(); ++i) {
        const CoreCoord from = path[i - 1];
        const CoreCoord to = path[i];
        const bool crossing = !geom_.sameDie(from, to);
        if (crossing)
            ++meta.dieCrossings;
        const std::uint64_t slot =
            geom_.coreIndex(from) * 4 +
            static_cast<unsigned>(stepDir(from, to));
        meta.slots.push_back(slot << 1 |
                             static_cast<std::uint64_t>(crossing));
    }
    meta.headSeconds = static_cast<double>(meta.hops) *
            static_cast<double>(params_.routerLatency) /
            params_.clockHz;
    const double slowest_factor =
        meta.dieCrossings > 0 ? params_.interDiePenalty : 1.0;
    meta.serialBitsPerSecond =
        params_.linkBitsPerCycle * params_.clockHz / slowest_factor;
    meta.energyPerBit =
        params_.hopEnergyPerBit * meta.hops +
        params_.dieCrossingEnergyPerBit * meta.dieCrossings;
    return meta;
}

const PricedRoute &
MeshNoc::pricedRoute(CoreCoord src, CoreCoord dst) const
{
    const std::uint64_t key =
        geom_.coreIndex(src) * geom_.numCores() + geom_.coreIndex(dst);
    const auto it = routeCache_.find(key);
    if (it != routeCache_.end()) {
        ++cacheHits_;
        return it->second;
    }
    if (cleanRoutes_) {
        const auto ok = sharedOk_.find(key);
        if (ok != sharedOk_.end()) {
            ++sharedHits_;
            return *ok->second;
        }
        // A clean XY route that survives this mesh's defects and
        // failed links is exactly what the cold router would compute
        // (dimension-ordered steps, none blocked), so serving it is
        // bit-identical to routing from scratch. The table entry
        // (route AND metadata) is immutable and address-stable, so
        // the pointer memo is safe.
        const PricedRoute &clean = cleanRoutes_->priced(src, dst);
        if (cleanRouteValid(clean.path)) {
            sharedOk_.emplace(key, &clean);
            ++sharedHits_;
            return clean;
        }
    }
    ++cacheMisses_;
    PricedRoute fresh;
    fresh.path = routeUncached(src, dst);
    fresh.meta = buildMeta(fresh.path);
    return routeCache_.emplace(key, std::move(fresh)).first->second;
}

const std::vector<CoreCoord> &
MeshNoc::routeCached(CoreCoord src, CoreCoord dst) const
{
    return pricedRoute(src, dst).path;
}

CleanRouteTable::CleanRouteTable(const WaferGeometry &geom,
                                 const NocParams &params)
    : clean_(geom, params)
{
}

const PricedRoute &
CleanRouteTable::priced(CoreCoord src, CoreCoord dst) const
{
    // The returned reference outlives the lock: entries are never
    // erased or overwritten (this class exposes no mutation and the
    // backing map is node-based), so only the lookup/insert races
    // need the mutex.
    std::lock_guard<std::mutex> lock(mutex_);
    return clean_.pricedRoute(src, dst);
}

const std::vector<CoreCoord> &
CleanRouteTable::route(CoreCoord src, CoreCoord dst) const
{
    return priced(src, dst).path;
}

std::size_t
CleanRouteTable::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return clean_.routeCacheSize();
}

std::uint64_t
CleanRouteTable::computedRoutes() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    // Every miss of the backing mesh's per-instance cache is one
    // route computation; the mutex makes the check-then-compute
    // sequence atomic, so this equals size() by construction.
    return clean_.routeCacheMisses();
}

std::vector<CoreCoord>
MeshNoc::route(CoreCoord src, CoreCoord dst) const
{
    return routeCached(src, dst);
}

TransferCost
MeshNoc::transferCost(CoreCoord src, CoreCoord dst, Bytes bytes) const
{
    TransferCost cost;
    if (src == dst)
        return cost;
    const PricedRoute &route = pricedRoute(src, dst);
    const auto &path = route.path;
    ouroAssert(!path.empty(), "transferCost: unroutable (",
               src.row, ",", src.col, ") -> (", dst.row, ",", dst.col,
               ")");
    if (priceFromMeta_) {
        // Fast path: the summary already holds the walk's hop/
        // crossing counts and pricing coefficients - a handful of
        // multiplies, no O(hops) walk. Bit-identical to the oracle
        // below because buildMeta() uses the identical expressions.
        ++metaPriced_;
        const RouteMeta &meta = route.meta;
        cost.hops = meta.hops;
        cost.dieCrossings = meta.dieCrossings;
        const double bits = static_cast<double>(bytes) * 8.0;
        cost.seconds = meta.headSeconds +
                       bits / meta.serialBitsPerSecond;
        cost.energyJ = bits * meta.energyPerBit;
        return cost;
    }
    // Retained walk oracle (setPriceFromMeta(false)).
    ++walkPriced_;
    cost.hops = static_cast<std::uint32_t>(path.size() - 1);
    for (std::size_t i = 1; i < path.size(); ++i) {
        if (!geom_.sameDie(path[i - 1], path[i]))
            ++cost.dieCrossings;
    }
    const double bits = static_cast<double>(bytes) * 8.0;
    // Head latency: router pipeline per hop. Serialisation: payload
    // over the narrowest traversed link (die crossings are slower by
    // the CostInter factor).
    const double head_s = static_cast<double>(cost.hops) *
            static_cast<double>(params_.routerLatency) / params_.clockHz;
    const double slowest_factor =
        cost.dieCrossings > 0 ? params_.interDiePenalty : 1.0;
    const double serial_s =
        bits / (params_.linkBitsPerCycle * params_.clockHz /
                slowest_factor);
    cost.seconds = head_s + serial_s;
    cost.energyJ = bits * (params_.hopEnergyPerBit * cost.hops +
                           params_.dieCrossingEnergyPerBit *
                           cost.dieCrossings);
    return cost;
}

double
MeshNoc::transferSeconds(CoreCoord src, CoreCoord dst,
                         Bytes bytes) const
{
    if (src == dst)
        return 0.0;
    if (priceFromMeta_) {
        const PricedRoute &route = pricedRoute(src, dst);
        ouroAssert(!route.path.empty(), "transferSeconds: unroutable (",
                   src.row, ",", src.col, ") -> (", dst.row, ",",
                   dst.col, ")");
        ++metaPriced_;
        return route.meta.headSeconds +
               static_cast<double>(bytes) * 8.0 /
                       route.meta.serialBitsPerSecond;
    }
    return transferCost(src, dst, bytes).seconds;
}

double
MeshNoc::transferEnergy(CoreCoord src, CoreCoord dst, Bytes bytes) const
{
    return transferCost(src, dst, bytes).energyJ;
}

TrafficAccumulator::TrafficAccumulator(const MeshNoc &noc)
    : noc_(noc), linkBytes_(noc.geometry().numCores() * 4, 0.0)
{
}

void
TrafficAccumulator::addFlow(CoreCoord src, CoreCoord dst, Bytes bytes)
{
    if (src == dst || bytes == 0)
        return;
    addFlow(noc_.pricedRoute(src, dst), bytes);
}

void
TrafficAccumulator::addFlow(const PricedRoute &route, Bytes bytes)
{
    if (bytes == 0 || route.path.size() == 1)
        return; // self-flow: nothing traverses a link
    ouroAssert(!route.path.empty(), "addFlow: unroutable flow");
    const auto &params = noc_.params();
    const double b = static_cast<double>(bytes);
    if (noc_.priceFromMeta_) {
        // Fast path: stream the precomputed (slot, crossing) list in
        // one blocked run with the per-route constants hoisted out of
        // the loop - no sameDie/coreIndex/stepDir and no per-hop
        // re-derivation of the two possible effective loads and hop
        // energies. The hoist changes no bits: b * 8.0 is exact
        // (power-of-two scale), hopE + 0.0 == hopE bitwise and
        // fl(b * 1.0) == b, so eff[c]/energy[c] equal the walk's
        // per-hop expressions value for value, and the per-slot
        // accumulation below runs the walk's ops in the walk's order.
        ++noc_.metaPriced_;
        const double b8 = b * 8.0;
        const double eff[2] = {b, b * params.interDiePenalty};
        const double energy[2] = {
            b8 * params.hopEnergyPerBit,
            b8 * (params.hopEnergyPerBit +
                  params.dieCrossingEnergyPerBit)};
        const std::uint64_t *packed = route.meta.slots.data();
        const std::size_t hops = route.meta.slots.size();
        for (std::size_t i = 0; i < hops; ++i) {
            const std::size_t c =
                static_cast<std::size_t>(packed[i] & 1);
            const double effective = eff[c];
            double &bucket = linkBytes_[packed[i] >> 1];
            if (bucket == 0.0)
                touched_.push_back(packed[i] >> 1);
            bucket += effective;
            effectiveByteHops_ += effective;
            maxLinkBytes_ = std::max(maxLinkBytes_, bucket);
            energyJ_ += energy[c];
            byteHops_ += b;
        }
        return;
    }
    // Retained walk oracle (setPriceFromMeta(false)).
    ++noc_.walkPriced_;
    const auto &path = route.path;
    const auto &geom = noc_.geometry();
    for (std::size_t i = 1; i < path.size(); ++i) {
        const CoreCoord from = path[i - 1];
        const CoreCoord to = path[i];
        // Die-crossing links carry an inflated effective load to model
        // their reduced bandwidth.
        const bool crossing = !geom.sameDie(from, to);
        const double effective =
            b * (crossing ? params.interDiePenalty : 1.0);
        const std::uint64_t slot =
            geom.coreIndex(from) * 4 +
            static_cast<unsigned>(MeshNoc::stepDir(from, to));
        double &bucket = linkBytes_[slot];
        if (bucket == 0.0)
            touched_.push_back(slot);
        bucket += effective;
        effectiveByteHops_ += effective;
        maxLinkBytes_ = std::max(maxLinkBytes_, bucket);
        energyJ_ += b * 8.0 *
                (params.hopEnergyPerBit +
                 (crossing ? params.dieCrossingEnergyPerBit : 0.0));
        byteHops_ += b;
    }
}

double
TrafficAccumulator::linkLoad(CoreCoord from, LinkDir dir) const
{
    return linkBytes_[noc_.geometry().coreIndex(from) * 4 +
                      static_cast<unsigned>(dir)];
}

double
TrafficAccumulator::bottleneckSeconds() const
{
    return maxLinkBytes_ / noc_.params().linkBytesPerSecond();
}

void
TrafficAccumulator::clear()
{
    for (const std::uint64_t slot : touched_)
        linkBytes_[slot] = 0.0;
    touched_.clear();
    maxLinkBytes_ = 0.0;
    energyJ_ = 0.0;
    byteHops_ = 0.0;
    effectiveByteHops_ = 0.0;
}

} // namespace ouro
