#include "htree.hh"

#include "common/logging.hh"

namespace ouro
{

namespace
{

bool
isPowerOfTwo(std::uint32_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

} // namespace

HTree::HTree(std::uint32_t leaves)
    : leaves_(leaves)
{
    ouroAssert(isPowerOfTwo(leaves), "HTree: leaf count ", leaves,
               " not a power of two");
    levels_ = 0;
    for (std::uint32_t n = leaves; n > 1; n >>= 1)
        ++levels_;
}

HTree::SubtreeInfo
HTree::evaluate(const std::vector<int> &assignment, std::uint32_t lo,
                std::uint32_t size, std::uint32_t depth) const
{
    if (size == 1) {
        const int group = assignment[lo];
        return {true, group < 0 ? -1 : group, 0, 0};
    }
    const std::uint32_t half = size / 2;
    const SubtreeInfo left =
        evaluate(assignment, lo, half, depth + 1);
    const SubtreeInfo right =
        evaluate(assignment, lo + half, half, depth + 1);

    SubtreeInfo info;
    info.cost = left.cost + right.cost;
    info.concats = left.concats + right.concats;

    // Empty subtrees merge transparently.
    if (left.group < 0) {
        info.pure = right.pure;
        info.group = right.group;
        return info;
    }
    if (right.group < 0) {
        info.pure = left.pure;
        info.group = left.group;
        return info;
    }

    if (left.pure && right.pure && left.group == right.group) {
        // Reduction: partial sums of the same output group combine;
        // weight 0 (Eq. 4).
        info.pure = true;
        info.group = left.group;
        return info;
    }

    // Concatenation: widens the bus; weight 1 scaled by depth.
    info.pure = false;
    info.group = left.group; // representative only; impure
    info.cost += depth;
    info.concats += 1;
    return info;
}

std::uint64_t
HTree::assignmentCost(const std::vector<int> &assignment) const
{
    ouroAssert(assignment.size() == leaves_,
               "assignmentCost: assignment size ", assignment.size(),
               " != leaves ", leaves_);
    return evaluate(assignment, 0, leaves_, 0).cost;
}

std::uint32_t
HTree::concatNodes(const std::vector<int> &assignment) const
{
    ouroAssert(assignment.size() == leaves_,
               "concatNodes: wrong assignment size");
    return evaluate(assignment, 0, leaves_, 0).concats;
}

} // namespace ouro
