/**
 * @file
 * Transformer model geometry.
 *
 * ModelConfig captures everything the simulator needs to know about an
 * LLM: the dimensions of its transformer blocks, the attention-mask
 * family (which decides whether token-grained pipelining applies
 * directly or needs the paper's blocking adaptation, Section 4.2.2),
 * and the weight precision. Preset factories cover every model in the
 * paper's evaluation (Section 6.1).
 */

#ifndef OURO_MODEL_LLM_HH
#define OURO_MODEL_LLM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hh"

namespace ouro
{

/**
 * The attention-mask families of Fig. 6. Causal masks admit pure
 * token-grained pipelining; bidirectional and prefix masks force the
 * attention stages back to sequence granularity (TGP "with block").
 */
enum class AttentionKind
{
    Causal,        ///< decoder-only (LLaMA, Baichuan, Qwen)
    Bidirectional, ///< encoder-only (BERT)
    Prefix,        ///< encoder-decoder (T5): bidirectional prefix,
                   ///< causal continuation
};

const char *attentionKindName(AttentionKind kind);

/**
 * Static description of one dense weight-bearing layer inside a
 * transformer block (the unit the inter-core mapper places).
 */
struct WeightLayer
{
    std::string name;   ///< e.g. "qkv", "proj", "ffn1", "ffn2"
    std::uint64_t inDim;  ///< input-channel count
    std::uint64_t outDim; ///< output-channel count

    /** Weight bytes at the model's precision. */
    Bytes weightBytes(unsigned bytes_per_param) const
    {
        return inDim * outDim * bytes_per_param;
    }
};

/**
 * Geometry of one model. All evaluated models are built from N
 * identical transformer blocks (Section 2.1), so a single block
 * description plus a repeat count suffices.
 */
struct ModelConfig
{
    std::string name;
    std::uint64_t numBlocks;    ///< transformer block count N
    std::uint64_t hiddenDim;    ///< model (residual stream) width
    std::uint64_t numHeads;     ///< query heads
    std::uint64_t numKvHeads;   ///< key/value heads (GQA if < numHeads)
    std::uint64_t headDim;      ///< per-head dimension
    std::uint64_t ffnDim;       ///< FFN intermediate width
    unsigned ffnMatrices;       ///< 3 for SwiGLU (gate/up/down), 2 else
    std::uint64_t vocabSize;
    unsigned bytesPerParam;     ///< 1 (int8) throughout the paper
    AttentionKind attention;
    std::uint64_t maxContext;   ///< maximum supported context length

    /** KV-projection width = numKvHeads * headDim. */
    std::uint64_t kvDim() const { return numKvHeads * headDim; }

    /** The dense layers of one block, in execution order. */
    std::vector<WeightLayer> blockLayers() const;

    /** Weight bytes of one transformer block. */
    Bytes blockWeightBytes() const;

    /** Total model weight bytes (blocks + embedding + head). */
    Bytes totalWeightBytes() const;

    /** KV-cache bytes appended per token per block. */
    Bytes kvBytesPerTokenPerBlock() const;

    /** KV-cache bytes appended per token across the whole model. */
    Bytes kvBytesPerToken() const;

    /** Activation bytes of a single token's hidden vector. */
    Bytes tokenActivationBytes() const { return hiddenDim * 1; }

    /**
     * MAC operations for one token passing through one block at
     * context length @p context (attention score/context GEMVs grow
     * with context, dense layers do not).
     */
    double blockMacsPerToken(std::uint64_t context) const;

    /** MACs for one token through the whole model. */
    double totalMacsPerToken(std::uint64_t context) const;

    /** Approximate parameter count (for reporting). */
    double parameterCount() const;
};

/** @name Preset models from the paper's evaluation (Section 6.1). */
/// @{
ModelConfig llama13b();
ModelConfig llama32b();
ModelConfig llama65b();
ModelConfig baichuan13b();
ModelConfig qwen32b();
ModelConfig t5_11b();
ModelConfig bertLarge();
/// @}

/** All decoder-only presets (the Fig. 13/14 matrix). */
std::vector<ModelConfig> decoderModels();

/** Encoder-bearing presets (the Fig. 16 pair). */
std::vector<ModelConfig> encoderModels();

/**
 * A scaled dense model of roughly @p billions parameters, used by the
 * Fig. 1 scaling-tax sweep (7 B ... 130 B).
 */
ModelConfig denseModel(double billions);

} // namespace ouro

#endif // OURO_MODEL_LLM_HH
