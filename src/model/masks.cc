#include "masks.hh"

#include <algorithm>

#include "common/logging.hh"

namespace ouro
{

std::uint64_t
attentionReadyPosition(AttentionKind kind, std::uint64_t token_pos,
                       std::uint64_t prefill_len)
{
    ouroAssert(prefill_len > 0, "attentionReadyPosition: empty prefill");
    const std::uint64_t last_prefill = prefill_len - 1;
    switch (kind) {
      case AttentionKind::Causal:
        return token_pos;
      case AttentionKind::Bidirectional:
        // Every prompt token sees the whole prompt. Generated tokens
        // (token_pos >= prefill_len) do not arise for encoder-only
        // models, but behave causally if they do.
        return std::max(token_pos, last_prefill);
      case AttentionKind::Prefix:
        // Prefix tokens see the whole prefix bidirectionally; the
        // generated continuation is causal.
        return token_pos < prefill_len ? last_prefill : token_pos;
    }
    panic("attentionReadyPosition: bad kind");
}

std::uint64_t
attendedContext(AttentionKind kind, std::uint64_t token_pos,
                std::uint64_t prefill_len)
{
    // Positions are attended inclusively up to the ready position.
    return attentionReadyPosition(kind, token_pos, prefill_len) + 1;
}

bool
masksAllowPureTgp(AttentionKind kind)
{
    return kind == AttentionKind::Causal;
}

} // namespace ouro
