/**
 * @file
 * The six-stage pipeline split of a transformer block (paper Fig. 4).
 *
 * Stage 1  LayerNormQ + QKV generation   (dense, weight-bearing)
 * Stage 2  Score S = Q.K^T               (CIM over cached K)
 * Stage 3  Softmax                       (SFU)
 * Stage 4  Context softmax(S).V          (CIM over cached V)
 * Stage 5  Projection + residual + LayerNorm (dense)
 * Stage 6  FFN (FFN1 + FFN2 [+ gate]) + residual (dense)
 *
 * A model with N blocks therefore runs a unified 6N-stage pipeline.
 * StageWork quantifies what one token costs at each stage, which the
 * pipeline engines turn into service times and the energy model into
 * joules.
 */

#ifndef OURO_MODEL_STAGES_HH
#define OURO_MODEL_STAGES_HH

#include <array>
#include <cstdint>
#include <vector>

#include "common/units.hh"
#include "model/llm.hh"

namespace ouro
{

/** Stage identifiers within one transformer block. */
enum class StageKind : unsigned
{
    QkvGen = 0,
    Score = 1,
    Softmax = 2,
    Context = 3,
    Projection = 4,
    Ffn = 5,
};

inline constexpr unsigned kStagesPerBlock = 6;

const char *stageKindName(StageKind kind);

/** Whether a stage's cost grows with the attended context length.
 *  Header-inline: the pipeline engines ask this for every stage of
 *  every heap event, so it must not be an out-of-line call. */
constexpr bool
stageIsAttention(StageKind kind)
{
    return kind == StageKind::Score || kind == StageKind::Softmax ||
           kind == StageKind::Context;
}

/** Whether a stage holds static weights (vs. operating on KV/SFU). */
constexpr bool
stageHoldsWeights(StageKind kind)
{
    return kind == StageKind::QkvGen ||
           kind == StageKind::Projection || kind == StageKind::Ffn;
}

/**
 * Cost of pushing one token through one stage of one block.
 *
 * macs          — multiply-accumulate count (crossbar work)
 * sfuOps        — elementwise/reduction operations on the SFU
 * inBytes       — activation bytes entering the stage
 * outBytes      — activation bytes leaving the stage
 * kvWriteBytes  — KV bytes appended by this stage (QKV gen writes K,V)
 * kvReadBytes   — KV bytes the in-situ attention touches
 */
struct StageWork
{
    double macs = 0.0;
    double sfuOps = 0.0;
    Bytes inBytes = 0;
    Bytes outBytes = 0;
    Bytes kvWriteBytes = 0;
    Bytes kvReadBytes = 0;
};

/**
 * Compute the per-token work of stage @p kind of model @p cfg when the
 * token attends to @p context previous positions (prefill position or
 * cached length during decode).
 */
StageWork stageWork(const ModelConfig &cfg, StageKind kind,
                    std::uint64_t context);

/** Work of all six stages at a given context. */
std::array<StageWork, kStagesPerBlock>
blockWork(const ModelConfig &cfg, std::uint64_t context);

/**
 * Identify a stage inside the unified 6N-stage pipeline:
 * global index = block * 6 + stage.
 */
struct StageId
{
    std::uint64_t block;
    StageKind kind;

    std::uint64_t flat() const
    {
        return block * kStagesPerBlock + static_cast<unsigned>(kind);
    }

    static StageId fromFlat(std::uint64_t flat_idx)
    {
        return {flat_idx / kStagesPerBlock,
                static_cast<StageKind>(flat_idx % kStagesPerBlock)};
    }

    bool operator==(const StageId &other) const = default;
};

/** Total number of pipeline stages for a model (6N). */
std::uint64_t numPipelineStages(const ModelConfig &cfg);

} // namespace ouro

#endif // OURO_MODEL_STAGES_HH
