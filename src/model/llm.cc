#include "llm.hh"

#include <cmath>

#include "common/logging.hh"

namespace ouro
{

const char *
attentionKindName(AttentionKind kind)
{
    switch (kind) {
      case AttentionKind::Causal:
        return "causal";
      case AttentionKind::Bidirectional:
        return "bidirectional";
      case AttentionKind::Prefix:
        return "prefix";
    }
    panic("attentionKindName: bad kind");
}

std::vector<WeightLayer>
ModelConfig::blockLayers() const
{
    std::vector<WeightLayer> layers;
    // Fused QKV projection: hidden -> (numHeads + 2*numKvHeads)*headDim.
    layers.push_back({"qkv", hiddenDim,
                      numHeads * headDim + 2 * kvDim()});
    // Output projection back into the residual stream.
    layers.push_back({"proj", numHeads * headDim, hiddenDim});
    if (ffnMatrices == 3) {
        // SwiGLU: gate and up projections feed an elementwise product.
        layers.push_back({"ffn_gate", hiddenDim, ffnDim});
        layers.push_back({"ffn_up", hiddenDim, ffnDim});
        layers.push_back({"ffn_down", ffnDim, hiddenDim});
    } else {
        layers.push_back({"ffn1", hiddenDim, ffnDim});
        layers.push_back({"ffn2", ffnDim, hiddenDim});
    }
    return layers;
}

Bytes
ModelConfig::blockWeightBytes() const
{
    Bytes total = 0;
    for (const auto &layer : blockLayers())
        total += layer.weightBytes(bytesPerParam);
    return total;
}

Bytes
ModelConfig::totalWeightBytes() const
{
    // Embedding table and (tied or untied) LM head. We charge both to
    // stay conservative about wafer capacity.
    const Bytes embedding = vocabSize * hiddenDim * bytesPerParam;
    return numBlocks * blockWeightBytes() + 2 * embedding;
}

Bytes
ModelConfig::kvBytesPerTokenPerBlock() const
{
    return 2 * kvDim() * bytesPerParam;
}

Bytes
ModelConfig::kvBytesPerToken() const
{
    return numBlocks * kvBytesPerTokenPerBlock();
}

double
ModelConfig::blockMacsPerToken(std::uint64_t context) const
{
    double macs = 0.0;
    for (const auto &layer : blockLayers())
        macs += static_cast<double>(layer.inDim) *
                static_cast<double>(layer.outDim);
    // Score (Q.K^T) and context (S.V) each cost heads*headDim MACs per
    // attended position.
    macs += 2.0 * static_cast<double>(numHeads) *
            static_cast<double>(headDim) * static_cast<double>(context);
    return macs;
}

double
ModelConfig::totalMacsPerToken(std::uint64_t context) const
{
    return static_cast<double>(numBlocks) * blockMacsPerToken(context);
}

double
ModelConfig::parameterCount() const
{
    return static_cast<double>(totalWeightBytes()) / bytesPerParam;
}

namespace
{

ModelConfig
makeDecoder(std::string name, std::uint64_t blocks, std::uint64_t hidden,
            std::uint64_t heads, std::uint64_t kv_heads,
            std::uint64_t ffn, unsigned ffn_mats, std::uint64_t vocab)
{
    ModelConfig cfg;
    cfg.name = std::move(name);
    cfg.numBlocks = blocks;
    cfg.hiddenDim = hidden;
    cfg.numHeads = heads;
    cfg.numKvHeads = kv_heads;
    cfg.headDim = hidden / heads;
    cfg.ffnDim = ffn;
    cfg.ffnMatrices = ffn_mats;
    cfg.vocabSize = vocab;
    cfg.bytesPerParam = 1; // 8-bit weights throughout the paper
    cfg.attention = AttentionKind::Causal;
    cfg.maxContext = 4096;
    return cfg;
}

} // namespace

ModelConfig
llama13b()
{
    return makeDecoder("LLaMA-13B", 40, 5120, 40, 40, 13824, 3, 32000);
}

ModelConfig
llama32b()
{
    // The paper's "LLaMA-32B" corresponds dimensionally to the 30/33B
    // checkpoint (60 blocks, 6656 hidden, 52 heads, 17920 FFN).
    ModelConfig cfg =
        makeDecoder("LLaMA-32B", 60, 6656, 52, 52, 17920, 3, 32000);
    return cfg;
}

ModelConfig
llama65b()
{
    return makeDecoder("LLaMA-65B", 80, 8192, 64, 64, 22016, 3, 32000);
}

ModelConfig
baichuan13b()
{
    return makeDecoder("Baichuan-13B", 40, 5120, 40, 40, 13696, 3,
                       125696);
}

ModelConfig
qwen32b()
{
    // Qwen2.5-32B: GQA with 8 KV heads.
    ModelConfig cfg =
        makeDecoder("Qwen-32B", 64, 5120, 40, 8, 27648, 3, 152064);
    return cfg;
}

ModelConfig
t5_11b()
{
    // T5-11B: encoder-decoder; we model the stack as 24+24 blocks of
    // the decoder geometry with a prefix mask (Section 4.2.2). T5 uses
    // 128 heads of d_kv=128 over d_model=1024, so headDim is set
    // explicitly rather than hidden/heads.
    ModelConfig cfg;
    cfg.name = "T5-11B";
    cfg.numBlocks = 48;
    cfg.hiddenDim = 1024;
    cfg.numHeads = 128;
    cfg.numKvHeads = 128;
    cfg.headDim = 128;
    cfg.ffnDim = 65536;
    cfg.ffnMatrices = 2;
    cfg.vocabSize = 32128;
    cfg.bytesPerParam = 1;
    cfg.attention = AttentionKind::Prefix;
    cfg.maxContext = 2048;
    return cfg;
}

ModelConfig
bertLarge()
{
    ModelConfig cfg;
    cfg.name = "BERT-Large";
    cfg.numBlocks = 24;
    cfg.hiddenDim = 1024;
    cfg.numHeads = 16;
    cfg.numKvHeads = 16;
    cfg.headDim = 64;
    cfg.ffnDim = 4096;
    cfg.ffnMatrices = 2;
    cfg.vocabSize = 30522;
    cfg.bytesPerParam = 1;
    cfg.attention = AttentionKind::Bidirectional;
    cfg.maxContext = 512;
    return cfg;
}

std::vector<ModelConfig>
decoderModels()
{
    return {llama13b(), baichuan13b(), llama32b(), qwen32b()};
}

std::vector<ModelConfig>
encoderModels()
{
    return {bertLarge(), t5_11b()};
}

ModelConfig
denseModel(double billions)
{
    ouroAssert(billions > 0.0, "denseModel: non-positive size");
    // Scale a LLaMA-like geometry: parameters ~ blocks * 12 * hidden^2
    // (qkv+proj = 4h^2, SwiGLU ffn with ffnDim = 8/3 h = 8h^2).
    // Keep headDim = 128 and grow hidden in steps of 128.
    const double params = billions * 1e9;
    double hidden = std::sqrt(params / (12.0 * 40.0));
    std::uint64_t blocks = 40;
    if (billions > 20.0)
        blocks = 60;
    if (billions > 45.0)
        blocks = 80;
    if (billions > 100.0)
        blocks = 96;
    hidden = std::sqrt(params / (12.0 * static_cast<double>(blocks)));
    auto hidden_q = static_cast<std::uint64_t>(
            std::round(hidden / 128.0)) * 128;
    if (hidden_q < 1024)
        hidden_q = 1024;
    const std::uint64_t heads = hidden_q / 128;
    const auto ffn = static_cast<std::uint64_t>(
            std::llround(8.0 / 3.0 * static_cast<double>(hidden_q) /
                         256.0)) * 256;
    std::string label = std::to_string(billions);
    // Trim trailing zeros for tidy preset names (7, 19.5, 130, ...).
    label.erase(label.find_last_not_of('0') + 1);
    if (!label.empty() && label.back() == '.')
        label.pop_back();
    ModelConfig cfg = makeDecoder("Dense-" + label + "B", blocks,
                                  hidden_q, heads, heads, ffn, 3,
                                  32000);
    return cfg;
}

} // namespace ouro
