#include "stages.hh"

#include "common/logging.hh"

namespace ouro
{

const char *
stageKindName(StageKind kind)
{
    switch (kind) {
      case StageKind::QkvGen:
        return "qkv-gen";
      case StageKind::Score:
        return "score";
      case StageKind::Softmax:
        return "softmax";
      case StageKind::Context:
        return "context";
      case StageKind::Projection:
        return "projection";
      case StageKind::Ffn:
        return "ffn";
    }
    panic("stageKindName: bad kind");
}

StageWork
stageWork(const ModelConfig &cfg, StageKind kind, std::uint64_t context)
{
    StageWork work;
    const auto hidden = static_cast<double>(cfg.hiddenDim);
    const auto heads = static_cast<double>(cfg.numHeads);
    const auto head_dim = static_cast<double>(cfg.headDim);
    const auto kv_dim = static_cast<double>(cfg.kvDim());
    const auto ctx = static_cast<double>(context);
    const auto q_dim = heads * head_dim;

    switch (kind) {
      case StageKind::QkvGen:
        // LayerNormQ on the SFU, then the fused QKV projection.
        work.macs = hidden * (q_dim + 2.0 * kv_dim);
        work.sfuOps = 4.0 * hidden; // mean, var, scale, shift
        work.inBytes = cfg.hiddenDim;
        work.outBytes = static_cast<Bytes>(q_dim + 2.0 * kv_dim);
        work.kvWriteBytes = cfg.kvBytesPerTokenPerBlock();
        break;
      case StageKind::Score:
        // Q.K^T against all cached positions, all heads in parallel.
        work.macs = heads * head_dim * ctx;
        work.inBytes = static_cast<Bytes>(q_dim);
        work.outBytes = static_cast<Bytes>(heads * ctx);
        work.kvReadBytes = static_cast<Bytes>(kv_dim * ctx);
        break;
      case StageKind::Softmax:
        // exp, running sum, divide per score element.
        work.sfuOps = 3.0 * heads * ctx;
        work.inBytes = static_cast<Bytes>(heads * ctx);
        work.outBytes = static_cast<Bytes>(heads * ctx);
        break;
      case StageKind::Context:
        // softmax(S).V over the cached values.
        work.macs = heads * head_dim * ctx;
        work.inBytes = static_cast<Bytes>(heads * ctx);
        work.outBytes = static_cast<Bytes>(q_dim);
        work.kvReadBytes = static_cast<Bytes>(kv_dim * ctx);
        break;
      case StageKind::Projection:
        work.macs = q_dim * hidden;
        work.sfuOps = 4.0 * hidden + hidden; // LayerNorm + residual add
        work.inBytes = static_cast<Bytes>(q_dim);
        work.outBytes = cfg.hiddenDim;
        break;
      case StageKind::Ffn: {
        const auto ffn = static_cast<double>(cfg.ffnDim);
        const double mats = cfg.ffnMatrices == 3 ? 3.0 : 2.0;
        work.macs = mats * hidden * ffn;
        // Activation function (and gating product for SwiGLU) plus
        // the residual add.
        work.sfuOps = (cfg.ffnMatrices == 3 ? 2.0 : 1.0) * ffn + hidden;
        work.inBytes = cfg.hiddenDim;
        work.outBytes = cfg.hiddenDim;
        break;
      }
    }
    return work;
}

std::array<StageWork, kStagesPerBlock>
blockWork(const ModelConfig &cfg, std::uint64_t context)
{
    std::array<StageWork, kStagesPerBlock> all;
    for (unsigned s = 0; s < kStagesPerBlock; ++s)
        all[s] = stageWork(cfg, static_cast<StageKind>(s), context);
    return all;
}

std::uint64_t
numPipelineStages(const ModelConfig &cfg)
{
    return cfg.numBlocks * kStagesPerBlock;
}

} // namespace ouro
