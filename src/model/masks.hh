/**
 * @file
 * Attention-mask semantics (paper Fig. 6) and the pipeline-readiness
 * rule they imply for token-grained pipelining (Section 4.2).
 *
 * For a causal mask, token t may enter the attention stages as soon as
 * tokens 0..t have produced their K/V — i.e. immediately after its own
 * QKV generation, which is what makes TGP stall-free on decoders.
 * Bidirectional masks require the whole sequence's K/V first; prefix
 * masks require the whole prefix for prefix tokens but behave causally
 * afterwards. attentionReadyPosition() encodes exactly this rule and
 * is the single source of truth for both pipeline engines.
 */

#ifndef OURO_MODEL_MASKS_HH
#define OURO_MODEL_MASKS_HH

#include <cstdint>

#include "model/llm.hh"

namespace ouro
{

/**
 * The index of the last token whose K/V must be available before token
 * @p token_pos (0-based within a sequence of @p prefill_len prompt
 * tokens) can run its score/context stages.
 *
 * Causal: token_pos itself. Bidirectional: prefill_len - 1 (the whole
 * input). Prefix: prefill_len - 1 while inside the prefix, token_pos
 * during the causal continuation.
 *
 * @return the 0-based position that must have completed QKV
 *         generation; always >= token_pos.
 */
std::uint64_t attentionReadyPosition(AttentionKind kind,
                                     std::uint64_t token_pos,
                                     std::uint64_t prefill_len);

/**
 * Number of positions token @p token_pos attends over (the effective
 * context that sizes score/context work).
 */
std::uint64_t attendedContext(AttentionKind kind,
                              std::uint64_t token_pos,
                              std::uint64_t prefill_len);

/** True if the mask admits pure (stall-free) token-grained pipelining. */
bool masksAllowPureTgp(AttentionKind kind);

} // namespace ouro

#endif // OURO_MODEL_MASKS_HH
