#include "analytic.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "kvcache/manager.hh"
#include "pipeline/engine.hh"
#include "pipeline/timing.hh"

namespace ouro
{

namespace
{

/** Workload aggregates every analytic model needs. */
struct WorkloadAgg
{
    double prefillTokens = 0.0;
    double decodeTokens = 0.0;
    double requests = 0.0;
    double avgPrefill = 0.0;
    double avgDecodeCtx = 0.0; ///< mean context over decode tokens
    double avgTotalLen = 0.0;
    double maxTotalLen = 0.0;
};

WorkloadAgg
aggregate(const Workload &workload)
{
    WorkloadAgg agg;
    double ctx_weighted = 0.0;
    for (const auto &r : workload.requests) {
        agg.prefillTokens += static_cast<double>(r.prefillLen);
        agg.decodeTokens += static_cast<double>(r.decodeLen);
        agg.requests += 1.0;
        agg.avgTotalLen += static_cast<double>(r.totalTokens());
        agg.maxTotalLen = std::max(
                agg.maxTotalLen,
                static_cast<double>(r.totalTokens()));
        // Sum of contexts over this request's decode tokens:
        // sum_{d=0..LD-1} (LP + d).
        const double lp = static_cast<double>(r.prefillLen);
        const double ld = static_cast<double>(r.decodeLen);
        ctx_weighted += ld * lp + ld * (ld - 1.0) / 2.0;
    }
    ouroAssert(agg.requests > 0.0, "aggregate: empty workload");
    agg.avgPrefill = agg.prefillTokens / agg.requests;
    agg.avgTotalLen /= agg.requests;
    agg.avgDecodeCtx =
        agg.decodeTokens > 0.0 ? ctx_weighted / agg.decodeTokens : 0.0;
    return agg;
}

/** Total MACs for the whole workload (prefill + decode, exact). */
double
workloadMacs(const ModelConfig &model, const Workload &workload)
{
    double macs = 0.0;
    for (const auto &r : workload.requests) {
        // Prefill token p attends p+1 positions (causal).
        const double lp = static_cast<double>(r.prefillLen);
        const double ld = static_cast<double>(r.decodeLen);
        const double dense = model.totalMacsPerToken(0);
        const double attn_coeff =
            model.totalMacsPerToken(1) - dense; // per position
        macs += (lp + ld) * dense;
        // sum of contexts: prefill sum (lp+1)lp/2, decode as below.
        macs += attn_coeff *
                ((lp + 1.0) * lp / 2.0 + ld * lp +
                 ld * (ld + 1.0) / 2.0);
    }
    return macs;
}

} // namespace

std::optional<SystemResult>
evalAccelerator(const AcceleratorParams &params,
                const ModelConfig &model, const Workload &workload)
{
    const WorkloadAgg agg = aggregate(workload);

    const double weight_bytes =
        model.parameterCount() * params.bytesPerParam;
    const double agg_hbm =
        static_cast<double>(params.numDevices) *
        static_cast<double>(params.hbmBytes);
    if (weight_bytes * 1.1 > agg_hbm)
        return std::nullopt; // model does not fit the node

    const double kv_per_token =
        static_cast<double>(model.kvBytesPerToken()) *
        params.bytesPerParam; // cfg counts 1 byte/element
    const double kv_capacity = agg_hbm - weight_bytes * 1.05;
    const double batch_by_kv =
        kv_capacity / std::max(1.0, agg.avgTotalLen * kv_per_token);
    const double batch = std::clamp(
            std::min(batch_by_kv, agg.requests), 1.0, 512.0);

    const double agg_bw = static_cast<double>(params.numDevices) *
                          params.hbmBytesPerSecond;
    const double agg_macs = static_cast<double>(params.numDevices) *
                            params.peakMacsPerSecond *
                            params.computeEfficiency;

    // ---- Decode (memory-bound roofline per batched step) ----
    const double macs_per_decode_token =
        model.totalMacsPerToken(
                static_cast<std::uint64_t>(agg.avgDecodeCtx));
    const double kv_read_per_step =
        batch * agg.avgDecodeCtx * kv_per_token;
    const double weight_read_per_step = weight_bytes;
    const double pin_bytes_per_step =
        weight_read_per_step +
        (params.pimAttention ? 0.0 : kv_read_per_step);
    // Tensor-parallel allreduce: 2 transits of the activation per
    // block over the device links.
    const double comm_bytes_per_step =
        batch * 2.0 * static_cast<double>(model.numBlocks) *
        static_cast<double>(model.hiddenDim) * params.bytesPerParam;
    const double agg_decode_macs =
        static_cast<double>(params.numDevices) *
        params.peakMacsPerSecond * params.decodeEfficiency;
    const double t_step =
        std::max({pin_bytes_per_step / agg_bw,
                  batch * macs_per_decode_token / agg_decode_macs}) +
        comm_bytes_per_step /
            (params.linkBytesPerSecond *
             static_cast<double>(params.numDevices)) +
        params.stepOverheadSeconds;
    const double decode_steps =
        agg.decodeTokens > 0.0 ? agg.decodeTokens / batch : 0.0;
    const double t_decode = decode_steps * t_step;

    // ---- Prefill (compute-bound; chunked prefill piggybacks on the
    //      decode steps' weight reads) ----
    double prefill_macs = 0.0;
    for (const auto &r : workload.requests) {
        const double lp = static_cast<double>(r.prefillLen);
        const double dense = model.totalMacsPerToken(0);
        const double attn =
            model.totalMacsPerToken(1) - dense;
        prefill_macs += lp * dense + attn * (lp + 1.0) * lp / 2.0;
    }
    const double t_prefill = prefill_macs / agg_macs;

    const double makespan = t_prefill + t_decode;

    // ---- Energy ----
    EnergyLedger ledger;
    const double total_macs = workloadMacs(model, workload);
    // Compute datapath + board idle/static (charged to compute).
    ledger.add(EnergyCategory::Compute,
               total_macs * params.macEnergy +
                   params.idlePowerW *
                       static_cast<double>(params.numDevices) *
                       makespan);

    // Off-chip: weight streams per decode step, KV reads (at PIM
    // energy when offloaded), KV writes, prefill activation spills.
    const double kv_read_bytes = agg.decodeTokens * agg.avgDecodeCtx *
                                 kv_per_token;
    const double kv_write_bytes =
        (agg.prefillTokens + agg.decodeTokens) * kv_per_token;
    const double weight_stream_bytes =
        decode_steps * weight_bytes +
        // prefill streams weights once per batch wave
        std::ceil(agg.requests / batch) * weight_bytes;
    double offchip_j =
        (weight_stream_bytes + kv_write_bytes) * 8.0 *
        params.hbmEnergyPerBit;
    offchip_j += kv_read_bytes * 8.0 *
                 (params.pimAttention ? params.pimEnergyPerBit
                                      : params.hbmEnergyPerBit);
    ledger.add(EnergyCategory::OffChipMemory, offchip_j);

    // On-chip: everything read from HBM is staged through SRAM at
    // least once, and MAC operands make ~1 B/operand worth of
    // SRAM/regfile traffic.
    const double onchip_bytes =
        0.5 * (weight_stream_bytes + kv_read_bytes + kv_write_bytes) +
        0.5 * total_macs;
    ledger.add(EnergyCategory::OnChipMemory,
               onchip_bytes * 8.0 * params.sramEnergyPerBit);

    // Communication: allreduce traffic for every token (prefill and
    // decode) across the node.
    const double comm_bytes =
        (agg.prefillTokens + agg.decodeTokens) * 2.0 *
        static_cast<double>(model.numBlocks) *
        static_cast<double>(model.hiddenDim) * params.bytesPerParam;
    ledger.add(EnergyCategory::Communication,
               comm_bytes * 8.0 * params.linkEnergyPerBit);

    SystemResult result;
    result.system = params.name;
    result.workload = workload.name;
    result.model = model.name;
    result.makespanSeconds = makespan;
    result.outputTokensPerSecond =
        agg.decodeTokens > 0.0 && makespan > 0.0
            ? agg.decodeTokens / makespan
            : 0.0;
    result.energyPerToken =
        ledger.scaled(agg.decodeTokens > 0.0 ? 1.0 / agg.decodeTokens
                                             : 1.0);
    result.peakConcurrency = batch;
    return result;
}

EnergyLedger
acceleratorTotalEnergy(const AcceleratorParams &params,
                       const ModelConfig &model,
                       const Workload &workload)
{
    const auto result = evalAccelerator(params, model, workload);
    ouroAssert(result.has_value(),
               "acceleratorTotalEnergy: model does not fit");
    const WorkloadAgg agg = aggregate(workload);
    return result->energyPerToken.scaled(agg.decodeTokens);
}

std::optional<SystemResult>
evalWse(const WseParams &params, const ModelConfig &model,
        const Workload &workload)
{
    const double weight_bytes =
        model.parameterCount() * params.bytesPerParam;
    const double sram =
        static_cast<double>(params.sramBytes) * params.numWafers;
    if (weight_bytes * 1.02 > sram)
        return std::nullopt;

    // --- Performance via the sequence-grained pipeline engine ---
    // The wafer is modelled as six work-proportional super-stages
    // (the WaferLLM spatial layout); a copy of the model with
    // numBlocks=1 makes the engine's block multiplier inert.
    ModelConfig flat = model;
    flat.numBlocks = 1;

    const double agg_rate =
        params.peakMacsPerSecond * params.computeEfficiency *
        params.numWafers;
    StageTiming timing;
    const auto dense_work = blockWork(model, 0);
    const auto unit_work = blockWork(model, 1);
    for (unsigned s = 0; s < kStagesPerBlock; ++s) {
        const double blocks = static_cast<double>(model.numBlocks);
        timing.fixedSeconds[s] =
            dense_work[s].macs * blocks / agg_rate +
            dense_work[s].sfuOps * blocks / agg_rate;
        timing.perContextSeconds[s] =
            (unit_work[s].macs - dense_work[s].macs) * blocks /
            agg_rate;
    }

    // KV pool: leftover SRAM split across blocks; expose it as a
    // synthetic core ring to the representative-block manager.
    const double kv_capacity_per_block =
        (sram - weight_bytes) / static_cast<double>(model.numBlocks);
    const double block_bytes = 128.0 * 128.0; // 16 KB logical block
    const auto side_blocks = static_cast<std::uint64_t>(
            std::max(1.0, kv_capacity_per_block / 2.0 / block_bytes));
    const std::uint32_t ring_cores = 64;
    const auto per_core = static_cast<std::uint32_t>(std::max<
            std::uint64_t>(1, side_blocks / ring_cores / 8));
    std::vector<KvCoreInfo> score_pool, context_pool;
    for (std::uint32_t i = 0; i < ring_cores; ++i) {
        score_pool.push_back({{0, i}, 8, per_core});
        context_pool.push_back({{1, i}, 8, per_core});
    }
    BlockKvManager kv(model, score_pool, context_pool);

    PipelineOptions opts;
    opts.kind = PipelineKind::SequenceGrained;
    const PipelineStats stats =
        runPipeline(workload, flat, timing, kv, opts);

    // --- Energy ---
    const WorkloadAgg agg = aggregate(workload);
    const double total_macs = workloadMacs(model, workload);
    EnergyLedger ledger;
    ledger.add(EnergyCategory::Compute,
               total_macs * params.macEnergy +
                   params.idlePowerW * stats.makespanSeconds);
    // Non-CIM SRAM: every MAC pulls its weight from SRAM. Prefill
    // GEMMs reuse a loaded tile across ~the chunk's tokens; decode
    // GEMVs get no reuse - this is the cost CIM removes.
    const double decode_weight_reads =
        agg.decodeTokens * weight_bytes;
    const double prefill_weight_reads =
        agg.prefillTokens / 64.0 * weight_bytes; // 64-token tiles
    const double kv_reads = agg.decodeTokens * agg.avgDecodeCtx *
                            static_cast<double>(
                                    model.kvBytesPerToken());
    const double onchip_bytes = decode_weight_reads +
                                prefill_weight_reads + kv_reads +
                                total_macs * 0.5;
    ledger.add(EnergyCategory::OnChipMemory,
               onchip_bytes * 8.0 * params.sramEnergyPerBit);
    // Fabric traffic: activations traverse the wafer between layers.
    const double fabric_bytes =
        (agg.prefillTokens + agg.decodeTokens) *
        static_cast<double>(model.numBlocks) *
        static_cast<double>(model.hiddenDim) * 4.0;
    ledger.add(EnergyCategory::Communication,
               fabric_bytes * 8.0 * params.fabricEnergyPerBit);
    // No off-chip memory at all - the WSE-2's defining property.

    SystemResult result;
    result.system = params.name;
    result.workload = workload.name;
    result.model = model.name;
    result.makespanSeconds = stats.makespanSeconds;
    result.outputTokensPerSecond = stats.outputTokensPerSecond();
    result.utilization = stats.utilization;
    result.peakConcurrency = stats.peakConcurrency;
    result.energyPerToken = ledger.scaled(
            agg.decodeTokens > 0.0 ? 1.0 / agg.decodeTokens : 1.0);
    return result;
}

SystemResult
evalCimMacro(const CimMacroParams &params, const ModelConfig &model,
             const Workload &workload)
{
    const WorkloadAgg agg = aggregate(workload);
    const double weight_bytes = model.parameterCount();
    const double onchip = params.waferCapacityGB * 1e9;

    // Wafer compute: macro density x usable wafer area.
    const double wafer_area_mm2 = 215.0 * 215.0 * 0.70;
    const double wafer_ops =
        params.topsPerMm2 * 1e12 * wafer_area_mm2;
    const double wafer_macs = wafer_ops / 2.0;
    const double efficiency = 0.30; // GEMV utilisation of macros

    const double kv_per_token =
        static_cast<double>(model.kvBytesPerToken());
    const bool streams = params.needsOffChip ||
                         weight_bytes * 1.05 > onchip;

    double t_decode_per_token;
    double batch = 1.0;
    const double macs_decode = model.totalMacsPerToken(
            static_cast<std::uint64_t>(agg.avgDecodeCtx));
    if (streams) {
        // Weights (and KV) stream from HBM2 every decode step.
        batch = std::clamp(agg.requests, 1.0, 256.0);
        const double step_bytes =
            weight_bytes + batch * agg.avgDecodeCtx * kv_per_token;
        const double t_step =
            std::max(step_bytes / params.offChipBytesPerSecond,
                     batch * macs_decode /
                         (wafer_macs * efficiency));
        t_decode_per_token = t_step / batch;
    } else {
        // Fully resident: token-grained pipeline keeps the macros
        // busy; throughput bound by in-SRAM compute.
        t_decode_per_token =
            macs_decode / (wafer_macs * efficiency);
    }
    const double t_decode = agg.decodeTokens * t_decode_per_token;
    const double prefill_macs =
        workloadMacs(model, workload) -
        agg.decodeTokens * macs_decode;
    const double t_prefill =
        std::max(0.0, prefill_macs) / (wafer_macs * efficiency);
    const double makespan = t_decode + t_prefill;

    EnergyLedger ledger;
    const double total_macs = workloadMacs(model, workload);
    const double compute_j = 2.0 * total_macs /
                             (params.topsPerWatt * 1e12) *
                             params.lutEnergyScale;
    // Idle floor: the macro wafer burns ~10% of its full compute
    // power regardless of utilisation; long (memory-stalled)
    // makespans pay for it dearly.
    const double wafer_full_power =
        wafer_ops / (params.topsPerWatt * 1e12);
    ledger.add(EnergyCategory::Compute,
               compute_j + 0.10 * wafer_full_power * makespan);
    if (streams) {
        const double stream_bytes =
            (agg.decodeTokens / batch) * weight_bytes +
            agg.decodeTokens * agg.avgDecodeCtx * kv_per_token +
            (agg.prefillTokens / 64.0) * weight_bytes;
        ledger.add(EnergyCategory::OffChipMemory,
                   stream_bytes * 8.0 * params.offChipEnergyPerBit);
        ledger.add(EnergyCategory::OnChipMemory,
                   stream_bytes * 8.0 * 0.6 * pJ); // staging
    } else {
        // Residual buffer/KV-write SRAM traffic (Section 6.3).
        const double buffer_bytes =
            (agg.prefillTokens + agg.decodeTokens) *
            (static_cast<double>(model.hiddenDim) * 8.0 +
             kv_per_token);
        ledger.add(EnergyCategory::OnChipMemory,
                   buffer_bytes * 8.0 * 1.6 * pJ / 8.0);
    }
    const double comm_bytes =
        (agg.prefillTokens + agg.decodeTokens) *
        static_cast<double>(model.numBlocks) *
        static_cast<double>(model.hiddenDim) * 3.0;
    ledger.add(EnergyCategory::Communication,
               comm_bytes * 8.0 * 0.1 * pJ);

    SystemResult result;
    result.system = params.name;
    result.workload = workload.name;
    result.model = model.name;
    result.makespanSeconds = makespan;
    result.outputTokensPerSecond =
        agg.decodeTokens > 0.0 && makespan > 0.0
            ? agg.decodeTokens / makespan
            : 0.0;
    result.energyPerToken = ledger.scaled(
            agg.decodeTokens > 0.0 ? 1.0 / agg.decodeTokens : 1.0);
    result.peakConcurrency = batch;
    return result;
}

} // namespace ouro
