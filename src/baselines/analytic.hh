/**
 * @file
 * Analytic performance/energy models of the baseline systems
 * (Section 6.1) and of the CIM-macro substitution study (Section 6.9).
 *
 * The paper's own baselines are model-derived (vLLM measurements on a
 * DGX, ONNXim/NPUsim for TPUv4, the AttAcc paper's simulator, a
 * WaferLLM-driven WSE-2 simulator). What the comparison relies on is
 * the memory-hierarchy structure these systems share: weights and KV
 * live in (or stream through) DRAM-class memory for the accelerator
 * family, or in non-compute SRAM for the WSE-2 - so decode is
 * bandwidth-bound, prefill is compute-bound, and every byte's journey
 * is priced by the standard pJ/bit ladder. The roofline + batching
 * models here reproduce exactly that structure.
 */

#ifndef OURO_BASELINES_ANALYTIC_HH
#define OURO_BASELINES_ANALYTIC_HH

#include <optional>

#include "baselines/device_params.hh"
#include "baselines/result.hh"
#include "model/llm.hh"
#include "workload/requests.hh"

namespace ouro
{

/**
 * Evaluate a DRAM/HBM-backed accelerator node (DGX A100, TPUv4,
 * AttAcc) with vLLM-style continuous batching.
 *
 * Returns std::nullopt when the model does not fit the node's
 * aggregate memory.
 */
std::optional<SystemResult>
evalAccelerator(const AcceleratorParams &params,
                const ModelConfig &model, const Workload &workload);

/**
 * Evaluate the Cerebras WSE-2 running a WaferLLM-style engine:
 * weights resident in on-chip SRAM (not CIM), sequence-grained
 * spatial pipelining. Returns std::nullopt when weights do not fit
 * the wafer('s) SRAM.
 */
std::optional<SystemResult>
evalWse(const WseParams &params, const ModelConfig &model,
        const Workload &workload);

/**
 * Evaluate a wafer built from a given CIM macro (Table 2 / Fig. 21):
 * macros with insufficient on-chip capacity stream weights from the
 * provisioned HBM2; full-capacity macros run entirely in SRAM.
 */
SystemResult evalCimMacro(const CimMacroParams &params,
                          const ModelConfig &model,
                          const Workload &workload);

/** @name Fig. 1 helper: energy breakdown of a GPU-node inference */
/// @{

/** Total (not per-token) energy of running @p workload; used by the
 *  scaling-tax sweep, which plots absolute joules vs model size. */
EnergyLedger acceleratorTotalEnergy(const AcceleratorParams &params,
                                    const ModelConfig &model,
                                    const Workload &workload);
/// @}

} // namespace ouro

#endif // OURO_BASELINES_ANALYTIC_HH
