#include "device_params.hh"

namespace ouro
{

AcceleratorParams
dgxA100()
{
    AcceleratorParams params;
    params.name = "DGX A100";
    params.numDevices = 8;
    params.peakMacsPerSecond = 156e12; // 312 TFLOPS fp16
    params.hbmBytesPerSecond = 1.555e12;
    params.hbmBytes = 40ull * 1000 * 1000 * 1000;
    params.bytesPerParam = 2;
    params.linkBytesPerSecond = 600e9;
    params.linkEnergyPerBit = 8.0 * pJ;
    params.hbmEnergyPerBit = 7.0 * pJ;
    params.computeEfficiency = 0.55;
    params.idlePowerW = 90.0;
    return params;
}

AcceleratorParams
tpuV4x8()
{
    AcceleratorParams params;
    params.name = "TPUv4";
    params.numDevices = 8;
    params.peakMacsPerSecond = 137.5e12; // 275 TFLOPS bf16
    params.hbmBytesPerSecond = 1.2e12;
    params.hbmBytes = 32ull * 1000 * 1000 * 1000;
    params.bytesPerParam = 2;
    params.linkBytesPerSecond = 50e9 * 6; // 3D-torus ICI, 6 links
    params.linkEnergyPerBit = 5.0 * pJ;
    params.hbmEnergyPerBit = 7.0 * pJ;
    params.macEnergy = 0.55 * pJ; // systolic array is leaner
    params.computeEfficiency = 0.60;
    params.idlePowerW = 60.0;
    return params;
}

AcceleratorParams
attAcc()
{
    // AttAcc = DGX-class host + HBM-PIM attention (Park et al.,
    // ASPLOS'24): 320 GB aggregate, decode attention runs in-stack.
    AcceleratorParams params = dgxA100();
    params.name = "AttAcc";
    params.hbmBytes = 40ull * 1000 * 1000 * 1000; // x8 = 320 GB
    params.pimAttention = true;
    params.pimEnergyPerBit = 1.2 * pJ;
    return params;
}

WseParams
wse2()
{
    return WseParams{};
}

CimMacroParams
cimOuroboros()
{
    CimMacroParams params;
    params.name = "Ours";
    params.topsPerWatt = 10.98;
    params.topsPerMm2 = 2.03;
    params.waferCapacityGB = 54.0;
    params.needsOffChip = false;
    return params;
}

CimMacroParams
cimVlsi22()
{
    CimMacroParams params;
    params.name = "VLSI'22";
    params.topsPerWatt = 49.67;
    params.topsPerMm2 = 26.0;
    params.waferCapacityGB = 2.63;
    params.needsOffChip = true;
    return params;
}

CimMacroParams
cimIsscc22()
{
    CimMacroParams params;
    params.name = "ISSCC'22";
    params.topsPerWatt = 44.41;
    params.topsPerMm2 = 30.55;
    params.waferCapacityGB = 11.32;
    params.needsOffChip = true;
    return params;
}

CimMacroParams
cimOuroborosLut()
{
    CimMacroParams params = cimOuroboros();
    params.name = "Ours+LUT";
    params.lutEnergyScale = 0.90; // Section 6.9: extra 10% savings
    return params;
}

} // namespace ouro
