/**
 * @file
 * Common result record every system model (Ouroboros and all
 * baselines) produces for one (model, workload) evaluation.
 */

#ifndef OURO_BASELINES_RESULT_HH
#define OURO_BASELINES_RESULT_HH

#include <string>

#include "common/stats.hh"

namespace ouro
{

/** Outcome of evaluating one system on one workload. */
struct SystemResult
{
    std::string system;
    std::string workload;
    std::string model;

    double makespanSeconds = 0.0;
    double outputTokensPerSecond = 0.0;

    /** Energy per OUTPUT token, by category (the Fig. 14 stacks). */
    EnergyLedger energyPerToken;

    /** Optional detail used by specific figures. */
    double utilization = 0.0;
    double peakConcurrency = 0.0;

    double energyPerTokenTotal() const
    {
        return energyPerToken.total();
    }
};

} // namespace ouro

#endif // OURO_BASELINES_RESULT_HH
