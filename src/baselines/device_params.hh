/**
 * @file
 * Published device parameters for the baseline systems of Section 6.1
 * and the CIM-macro comparison of Section 6.9 / Table 2.
 *
 * Every number is a public spec-sheet or paper value:
 *  - NVIDIA A100 40GB (DGX node, NVLink3), running vLLM-class
 *    continuous batching at fp16;
 *  - Google TPUv4 (275 TFLOPS bf16, 32 GB HBM2 @ 1.2 TB/s);
 *  - AttAcc (DGX + HBM-PIM for attention, 320 GB aggregate);
 *  - Cerebras WSE-2 (40 GB on-chip SRAM, no DRAM) running a
 *    WaferLLM-style engine;
 *  - CIM macros: VLSI'22 and ISSCC'22 scaled to 7 nm per the paper
 *    (49.67 / 44.41 TOPS/W, 26.0 / 30.55 TOPS/mm2, 2.63 / 11.32 GB
 *    wafer capacity) backed by HBM2 @ 1.6 TB/s.
 *
 * Energy-per-bit constants follow the standard architecture-
 * literature ladder: HBM ~7 pJ/bit at the pins, NVLink ~8 pJ/bit,
 * large on-chip SRAM ~0.6 pJ/bit, ALU datapath ~0.8 pJ per 8-bit MAC
 * equivalent on a 7 nm GPU-class core.
 */

#ifndef OURO_BASELINES_DEVICE_PARAMS_HH
#define OURO_BASELINES_DEVICE_PARAMS_HH

#include <cstdint>
#include <string>

#include "common/units.hh"

namespace ouro
{

/** A DRAM/HBM-backed accelerator node (GPU/TPU/AttAcc family). */
struct AcceleratorParams
{
    std::string name;
    std::uint32_t numDevices = 8;

    /** Peak dense throughput per device (MAC/s at inference width). */
    double peakMacsPerSecond = 156e12; // A100: 312 TFLOPS fp16 / 2

    /** HBM bandwidth and capacity per device. */
    double hbmBytesPerSecond = 1.555e12;
    Bytes hbmBytes = 40ull * 1000 * 1000 * 1000;

    /** Inference weight/KV precision in bytes (fp16 = 2). */
    unsigned bytesPerParam = 2;

    /** Interconnect between devices. */
    double linkBytesPerSecond = 600e9; // NVLink3 per device
    double linkEnergyPerBit = 8.0 * pJ;

    /** Energy constants. */
    double hbmEnergyPerBit = 7.0 * pJ;
    double sramEnergyPerBit = 0.6 * pJ;  ///< caches/regfiles per access
    double macEnergy = 0.8 * pJ;         ///< per MAC incl. datapath

    /** Static/idle power per device (board level). */
    double idlePowerW = 90.0;

    /** Achievable fraction of peak MACs on dense GEMM (prefill). */
    double computeEfficiency = 0.55;

    /** Achievable fraction of peak on batched GEMV (decode). */
    double decodeEfficiency = 0.35;

    /** Per-decode-step scheduler/kernel-launch overhead. */
    double stepOverheadSeconds = 150e-6;

    /**
     * PIM attention offload (AttAcc): when true, decode-phase KV
     * reads happen inside the memory stacks - they stop consuming
     * pin bandwidth and cost pimEnergyPerBit instead.
     */
    bool pimAttention = false;
    double pimEnergyPerBit = 1.2 * pJ;
};

/** Presets. */
AcceleratorParams dgxA100();
AcceleratorParams tpuV4x8();
AcceleratorParams attAcc();

/** A wafer-scale SRAM (non-CIM) engine: Cerebras WSE-2. */
struct WseParams
{
    std::string name = "Cerebras WSE-2";
    std::uint32_t numWafers = 1;

    Bytes sramBytes = 40ull * 1000 * 1000 * 1000; ///< on-chip, total
    double peakMacsPerSecond = 3750e12; ///< ~7.5 PFLOPS fp16 -> MACs
    double sramEnergyPerBit = 0.35 * pJ; ///< local SRAM read
    double macEnergy = 0.55 * pJ;
    double fabricEnergyPerBit = 0.15 * pJ;
    double idlePowerW = 5000.0; ///< 20 kW-class system, idle floor
    unsigned bytesPerParam = 1;  ///< int8 like Ouroboros
    double computeEfficiency = 0.10; ///< WaferLLM GEMV MFU
};

WseParams wse2();

/** CIM macro alternatives for the Fig. 21 / Table 2 study. */
struct CimMacroParams
{
    std::string name;
    double topsPerWatt = 10.98;   ///< system-level, 7 nm
    double topsPerMm2 = 2.03;
    double waferCapacityGB = 54.0;
    bool needsOffChip = false;    ///< weights exceed on-chip capacity
    double offChipBytesPerSecond = 1.6e12; ///< HBM2 provisioned
    double offChipEnergyPerBit = 7.0 * pJ;
    double lutEnergyScale = 1.0;  ///< <1 for LUT-based compute
};

CimMacroParams cimOuroboros();
CimMacroParams cimVlsi22();
CimMacroParams cimIsscc22();
CimMacroParams cimOuroborosLut();

} // namespace ouro

#endif // OURO_BASELINES_DEVICE_PARAMS_HH
