#include "table.hh"

#include <algorithm>
#include <cstdint>
#include <iomanip>
#include <sstream>

#include "logging.hh"

namespace ouro
{

std::string
formatDouble(double value, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value;
    return os.str();
}

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    ouroAssert(!headers_.empty(), "Table: no headers");
}

Table &
Table::row()
{
    rows_.emplace_back();
    return *this;
}

Table &
Table::cell(const std::string &text)
{
    ouroAssert(!rows_.empty(), "Table::cell before row()");
    ouroAssert(rows_.back().size() < headers_.size(),
               "Table::cell: row wider than header");
    rows_.back().push_back(text);
    return *this;
}

Table &
Table::cell(const char *text)
{
    return cell(std::string(text));
}

Table &
Table::cell(double value, int precision)
{
    return cell(formatDouble(value, precision));
}

Table &
Table::cell(std::uint64_t value)
{
    return cell(std::to_string(value));
}

Table &
Table::cell(int value)
{
    return cell(std::to_string(value));
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers_.size(), 0);
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto print_row = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < headers_.size(); ++c) {
            const std::string &text =
                c < cells.size() ? cells[c] : std::string();
            os << "| " << std::left << std::setw(
                    static_cast<int>(widths[c])) << text << ' ';
        }
        os << "|\n";
    };

    print_row(headers_);
    for (std::size_t c = 0; c < headers_.size(); ++c) {
        os << "|";
        for (std::size_t i = 0; i < widths[c] + 2; ++i)
            os << '-';
    }
    os << "|\n";
    for (const auto &row : rows_)
        print_row(row);
}

} // namespace ouro
