#include "stats.hh"

#include <algorithm>
#include <cmath>

#include "logging.hh"

namespace ouro
{

const char *
energyCategoryName(EnergyCategory cat)
{
    switch (cat) {
      case EnergyCategory::Compute:
        return "compute";
      case EnergyCategory::Communication:
        return "communication";
      case EnergyCategory::OnChipMemory:
        return "on-chip-memory";
      case EnergyCategory::OffChipMemory:
        return "off-chip-memory";
    }
    panic("energyCategoryName: bad category");
}

void
EnergyLedger::add(EnergyCategory cat, double joules)
{
    ouroAssert(joules >= 0.0, "EnergyLedger::add: negative deposit ",
               joules, " J into ", energyCategoryName(cat));
    bins_[static_cast<std::size_t>(cat)] += joules;
}

double
EnergyLedger::get(EnergyCategory cat) const
{
    return bins_[static_cast<std::size_t>(cat)];
}

double
EnergyLedger::total() const
{
    double sum = 0.0;
    for (double b : bins_)
        sum += b;
    return sum;
}

void
EnergyLedger::merge(const EnergyLedger &other)
{
    for (std::size_t i = 0; i < kNumEnergyCategories; ++i)
        bins_[i] += other.bins_[i];
}

EnergyLedger
EnergyLedger::scaled(double factor) const
{
    ouroAssert(factor >= 0.0, "EnergyLedger::scaled: negative factor");
    EnergyLedger out;
    for (std::size_t i = 0; i < kNumEnergyCategories; ++i)
        out.bins_[i] = bins_[i] * factor;
    return out;
}

void
RunningStat::add(double x)
{
    if (n_ == 0) {
        min_ = x;
        max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

double
RunningStat::min() const
{
    return n_ ? min_ : 0.0;
}

double
RunningStat::max() const
{
    return n_ ? max_ : 0.0;
}

double
RunningStat::variance() const
{
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

double
percentileOf(std::vector<double> samples, double pct)
{
    if (samples.empty())
        return 0.0;
    ouroAssert(pct >= 0.0 && pct <= 100.0,
               "percentileOf: pct out of [0, 100]");
    std::sort(samples.begin(), samples.end());
    const double rank =
        pct / 100.0 * static_cast<double>(samples.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    if (lo + 1 >= samples.size())
        return samples.back();
    const double frac = rank - static_cast<double>(lo);
    return samples[lo] + (samples[lo + 1] - samples[lo]) * frac;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0)
{
    ouroAssert(hi > lo && bins > 0, "Histogram: bad range/bins");
}

void
Histogram::add(double x)
{
    const double frac = (x - lo_) / (hi_ - lo_);
    auto idx = static_cast<long>(frac * static_cast<double>(counts_.size()));
    idx = std::clamp<long>(idx, 0, static_cast<long>(counts_.size()) - 1);
    ++counts_[static_cast<std::size_t>(idx)];
    ++samples_;
}

std::size_t
Histogram::binCount(std::size_t i) const
{
    ouroAssert(i < counts_.size(), "Histogram::binCount: index ", i,
               " out of range");
    return counts_[i];
}

double
Histogram::binLow(std::size_t i) const
{
    return lo_ + (hi_ - lo_) * static_cast<double>(i) /
           static_cast<double>(counts_.size());
}

} // namespace ouro
