#include "parallel.hh"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <memory>

namespace ouro
{

namespace
{

/** Set while a pool worker runs a task: nested parallelFor calls on
 *  the same pool would deadlock waiting for busy workers, so they
 *  degrade to serial loops instead. */
thread_local bool t_inWorker = false;

} // namespace

unsigned
defaultThreadCount()
{
    if (const char *env = std::getenv("OURO_THREADS")) {
        const long n = std::atol(env);
        if (n >= 1)
            return static_cast<unsigned>(n);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw >= 1 ? hw : 1;
}

ThreadPool::ThreadPool(unsigned num_threads)
{
    const unsigned n =
        num_threads ? num_threads : defaultThreadCount();
    workers_.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    cv_.notify_all();
    for (auto &worker : workers_)
        worker.join();
}

void
ThreadPool::workerLoop()
{
    t_inWorker = true;
    while (true) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock,
                     [this] { return stop_ || !tasks_.empty(); });
            if (stop_ && tasks_.empty())
                return;
            task = std::move(tasks_.front());
            tasks_.pop_front();
        }
        task();
    }
}

void
ThreadPool::parallelFor(std::size_t n,
                        const std::function<void(std::size_t)> &body)
{
    if (n == 0)
        return;
    const std::size_t width =
        std::min<std::size_t>(n, size() + 1); // + the calling thread
    if (width <= 1 || t_inWorker) {
        for (std::size_t i = 0; i < n; ++i)
            body(i);
        return;
    }

    // Shared batch state. Iterations are claimed off one atomic
    // counter; each writes only its own per-index results, so the
    // outcome is independent of the claim order (determinism
    // contract of this runtime).
    struct Batch
    {
        std::atomic<std::size_t> next{0};
        std::size_t n;
        const std::function<void(std::size_t)> *body;
        std::mutex doneMutex;
        std::condition_variable doneCv;
        std::size_t pending;
        std::exception_ptr error;
    };
    auto batch = std::make_shared<Batch>();
    batch->n = n;
    batch->body = &body;
    batch->pending = width;

    auto runner = [batch] {
        while (true) {
            const std::size_t i = batch->next.fetch_add(
                    1, std::memory_order_relaxed);
            if (i >= batch->n)
                break;
            try {
                (*batch->body)(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(batch->doneMutex);
                if (!batch->error)
                    batch->error = std::current_exception();
                // Drain remaining iterations unrun.
                batch->next.store(batch->n,
                                  std::memory_order_relaxed);
            }
        }
        std::lock_guard<std::mutex> lock(batch->doneMutex);
        if (--batch->pending == 0)
            batch->doneCv.notify_all();
    };

    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (std::size_t h = 0; h + 1 < width; ++h)
            tasks_.emplace_back(runner);
    }
    cv_.notify_all();
    {
        // The calling thread participates as a de-facto worker, so
        // a nested parallelFor inside body must degrade to a serial
        // loop here exactly as it does on pool workers - otherwise
        // it queues stub tasks behind the busy workers and blocks
        // this thread until the whole outer sweep drains.
        const bool was_in_worker = t_inWorker;
        t_inWorker = true;
        runner(); // the calling thread is a participant
        t_inWorker = was_in_worker;
    }

    std::unique_lock<std::mutex> lock(batch->doneMutex);
    batch->doneCv.wait(lock, [&] { return batch->pending == 0; });
    if (batch->error)
        std::rethrow_exception(batch->error);
}

void
parallelFor(std::size_t n,
            const std::function<void(std::size_t)> &body)
{
    static ThreadPool pool;
    pool.parallelFor(n, body);
}

} // namespace ouro
