/**
 * @file
 * Status-message and error-handling helpers in the gem5 tradition.
 *
 * panic()  — an internal invariant was violated (a simulator bug);
 *            aborts so a debugger / core dump can capture the state.
 * fatal()  — the simulation cannot continue because of a user error
 *            (bad configuration, invalid argument); exits with code 1.
 * warn()   — something is modelled approximately; execution continues.
 * inform() — normal operating status for the user.
 */

#ifndef OURO_COMMON_LOGGING_HH
#define OURO_COMMON_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <utility>

namespace ouro
{

namespace detail
{

/** Stream-compose a message from a variadic pack. */
template <typename... Args>
std::string
composeMessage(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

/** Emit one tagged line to stderr. */
void emitLine(const char *tag, const std::string &msg);

/** Whether inform() output is suppressed (for quiet benchmarks). */
bool &quietFlag();

} // namespace detail

/** Suppress (or re-enable) inform() output globally. */
inline void
setQuiet(bool quiet)
{
    detail::quietFlag() = quiet;
}

/**
 * Report an internal simulator bug and abort.
 *
 * @param args Message fragments, streamed together.
 */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    detail::emitLine("panic", detail::composeMessage(
            std::forward<Args>(args)...));
    std::abort();
}

/**
 * Report an unrecoverable user/configuration error and exit(1).
 */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    detail::emitLine("fatal", detail::composeMessage(
            std::forward<Args>(args)...));
    std::exit(1);
}

/** Report a condition that is modelled approximately but continues. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::emitLine("warn", detail::composeMessage(
            std::forward<Args>(args)...));
}

/** Report normal operating status. Suppressed by setQuiet(true). */
template <typename... Args>
void
inform(Args &&...args)
{
    if (!detail::quietFlag()) {
        detail::emitLine("info", detail::composeMessage(
                std::forward<Args>(args)...));
    }
}

/**
 * Assert a simulator invariant; on failure panic with the message.
 * Active in all build types (simulation correctness depends on it).
 */
template <typename... Args>
void
ouroAssert(bool condition, Args &&...args)
{
    if (!condition) {
        panic("assertion failed: ",
              detail::composeMessage(std::forward<Args>(args)...));
    }
}

} // namespace ouro

#endif // OURO_COMMON_LOGGING_HH
