/**
 * @file
 * Physical-unit helpers shared across the simulator.
 *
 * The simulator carries energies in joules, times in seconds, sizes in
 * bytes and rates in bytes/second or operations/second. These are plain
 * doubles / integers; the helpers here make literals self-describing
 * (e.g. 4 * MiB, 1.6 * TBps, 7 * pJ) so hardware parameter tables read
 * like the paper's own spec sheets.
 */

#ifndef OURO_COMMON_UNITS_HH
#define OURO_COMMON_UNITS_HH

#include <cstdint>

namespace ouro
{

/** Size in bytes. */
using Bytes = std::uint64_t;

/** Discrete simulator cycles. */
using Cycles = std::uint64_t;

// Binary size multipliers.
inline constexpr Bytes KiB = 1024ULL;
inline constexpr Bytes MiB = 1024ULL * KiB;
inline constexpr Bytes GiB = 1024ULL * MiB;

// Decimal rate multipliers (bytes / second).
inline constexpr double KBps = 1e3;
inline constexpr double MBps = 1e6;
inline constexpr double GBps = 1e9;
inline constexpr double TBps = 1e12;

// Frequencies (hertz).
inline constexpr double MHz = 1e6;
inline constexpr double GHz = 1e9;

// Energies (joules).
inline constexpr double pJ = 1e-12;
inline constexpr double nJ = 1e-9;
inline constexpr double uJ = 1e-6;
inline constexpr double mJ = 1e-3;

// Power (watts).
inline constexpr double mW = 1e-3;
inline constexpr double W = 1.0;

// Times (seconds).
inline constexpr double ns = 1e-9;
inline constexpr double us = 1e-6;
inline constexpr double ms = 1e-3;

// Compute rates (operations / second).
inline constexpr double GOPS = 1e9;
inline constexpr double TOPS = 1e12;
inline constexpr double TFLOPS = 1e12;

/** Convert a cycle count at a given clock to seconds. */
inline constexpr double
cyclesToSeconds(Cycles cycles, double clock_hz)
{
    return static_cast<double>(cycles) / clock_hz;
}

/** Integer ceiling division for sizing/tiling computations. */
inline constexpr std::uint64_t
ceilDiv(std::uint64_t num, std::uint64_t den)
{
    return (num + den - 1) / den;
}

} // namespace ouro

#endif // OURO_COMMON_UNITS_HH
