/**
 * @file
 * Deterministic pseudo-random number generator.
 *
 * Every stochastic element of the simulator (defect maps, workload
 * length distributions, annealing moves) draws from an explicitly
 * seeded Rng instance so that all experiments are bit-reproducible.
 * The core generator is xoshiro256** (Blackman & Vigna), chosen for
 * speed and statistical quality; std::mt19937 is deliberately avoided
 * because its state size dwarfs our needs and its distributions are
 * implementation-defined across standard libraries.
 */

#ifndef OURO_COMMON_RNG_HH
#define OURO_COMMON_RNG_HH

#include <cstdint>

namespace ouro
{

/**
 * Seedable xoshiro256** generator with the distribution helpers the
 * simulator needs. All distribution code is in-house so results are
 * identical across platforms and standard libraries.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed via SplitMix64 state expansion. */
    explicit Rng(std::uint64_t seed = 0x6f75726f626f726fULL);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t uniformInt(std::uint64_t lo, std::uint64_t hi);

    /** Standard normal via Box-Muller (cached second deviate). */
    double normal();

    /** Normal with the given mean and standard deviation. */
    double normal(double mean, double stddev);

    /** Log-normal: exp(N(mu, sigma)). */
    double logNormal(double mu, double sigma);

    /** Bernoulli draw with probability p of true. */
    bool bernoulli(double p);

  private:
    std::uint64_t s_[4];
    bool hasCachedNormal_ = false;
    double cachedNormal_ = 0.0;

    static std::uint64_t rotl(std::uint64_t x, int k);
};

} // namespace ouro

#endif // OURO_COMMON_RNG_HH
