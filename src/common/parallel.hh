/**
 * @file
 * Deterministic parallel sweep runtime.
 *
 * The design-space and figure harnesses are embarrassingly parallel:
 * every sweep point builds its own system, seeds its own Rng and
 * writes its own result slot. A plain fixed thread pool with a
 * shared index counter therefore extracts all available speedup with
 * no work stealing and - crucially - no effect on results: as long
 * as the loop body only touches per-index state, the output is
 * bit-identical whatever the thread count (including 1). That
 * contract is what lets the benches assert parallel == serial.
 *
 * Usage:
 *
 *     std::vector<Row> rows(points.size());
 *     parallelFor(points.size(), [&](std::size_t i) {
 *         rows[i] = evaluate(points[i]); // per-index writes only
 *     });
 *
 * Thread count: OURO_THREADS environment variable when set (>= 1),
 * else std::thread::hardware_concurrency(). parallelFor from inside
 * a pool worker degrades to a serial loop instead of deadlocking.
 * The first exception thrown by any iteration is rethrown in the
 * caller after the loop drains.
 */

#ifndef OURO_COMMON_PARALLEL_HH
#define OURO_COMMON_PARALLEL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ouro
{

/** Worker count from OURO_THREADS, else the hardware's. Always >= 1. */
unsigned defaultThreadCount();

/** Fixed-size thread pool running queued tasks FIFO. */
class ThreadPool
{
  public:
    /** @param num_threads 0 = defaultThreadCount(). */
    explicit ThreadPool(unsigned num_threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads (>= 1). */
    unsigned size() const
    {
        return static_cast<unsigned>(workers_.size());
    }

    /**
     * Run body(i) for every i in [0, n), spreading iterations over
     * the pool plus the calling thread. Blocks until every
     * iteration finished; rethrows the first exception any
     * iteration threw (remaining iterations are skipped once an
     * exception is recorded).
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &body);

  private:
    void workerLoop();

    std::vector<std::thread> workers_;
    std::mutex mutex_;
    std::condition_variable cv_;
    std::deque<std::function<void()>> tasks_;
    bool stop_ = false;
};

/**
 * parallelFor on a process-wide shared pool (created on first use
 * with defaultThreadCount() workers).
 */
void parallelFor(std::size_t n,
                 const std::function<void(std::size_t)> &body);

} // namespace ouro

#endif // OURO_COMMON_PARALLEL_HH
