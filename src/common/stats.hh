/**
 * @file
 * Energy/time accounting used by every system model in the repository.
 *
 * The paper reports energy in the four categories of its Fig. 1 /
 * Fig. 14 stacked bars: compute, communication, on-chip memory, and
 * off-chip memory. EnergyLedger mirrors exactly that breakdown so a
 * bench binary can print the same stacks the paper plots.
 */

#ifndef OURO_COMMON_STATS_HH
#define OURO_COMMON_STATS_HH

#include <array>
#include <cstddef>
#include <string>
#include <vector>

namespace ouro
{

/** The four energy categories of the paper's stacked-bar figures. */
enum class EnergyCategory : std::size_t
{
    Compute = 0,
    Communication = 1,
    OnChipMemory = 2,
    OffChipMemory = 3,
};

inline constexpr std::size_t kNumEnergyCategories = 4;

/** Printable name of an energy category. */
const char *energyCategoryName(EnergyCategory cat);

/**
 * Accumulates joules per category. Supports merging (for composing
 * subsystem ledgers into a system total) and scaling (for normalising
 * per token / per request).
 */
class EnergyLedger
{
  public:
    EnergyLedger() { bins_.fill(0.0); }

    /** Add @p joules to @p cat. Negative deposits are a caller bug. */
    void add(EnergyCategory cat, double joules);

    /** Energy recorded for one category. */
    double get(EnergyCategory cat) const;

    /** Sum over all categories. */
    double total() const;

    /** Merge another ledger into this one. */
    void merge(const EnergyLedger &other);

    /** Return a copy with every bin multiplied by @p factor. */
    EnergyLedger scaled(double factor) const;

    /** Reset all bins to zero. */
    void clear() { bins_.fill(0.0); }

  private:
    std::array<double, kNumEnergyCategories> bins_;
};

/**
 * A simple running-statistics accumulator (count / mean / min / max /
 * variance via Welford). Used for utilisation, bubble fractions, queue
 * depths, hop counts, etc.
 */
class RunningStat
{
  public:
    void add(double x);

    std::size_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }
    double min() const;
    double max() const;
    double variance() const;
    double stddev() const;

  private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Percentile of a sample vector (pct in [0, 100]), computed on a
 * sorted copy with linear interpolation between order statistics
 * (the common "inclusive" definition: pct 0 = min, 100 = max, 50 =
 * median). Returns 0.0 for an empty vector. Deterministic: the same
 * samples in any order give the same value bit for bit (std::sort on
 * doubles is a total order here; callers never feed NaNs).
 */
double percentileOf(std::vector<double> samples, double pct);

/**
 * Fixed-bin histogram over [lo, hi); out-of-range samples clamp to the
 * edge bins so nothing is silently dropped.
 */
class Histogram
{
  public:
    Histogram(double lo, double hi, std::size_t bins);

    void add(double x);

    std::size_t binCount(std::size_t i) const;
    std::size_t bins() const { return counts_.size(); }
    std::size_t samples() const { return samples_; }

    /** Lower edge of bin @p i. */
    double binLow(std::size_t i) const;

  private:
    double lo_;
    double hi_;
    std::vector<std::size_t> counts_;
    std::size_t samples_ = 0;
};

} // namespace ouro

#endif // OURO_COMMON_STATS_HH
