#include "logging.hh"

namespace ouro
{
namespace detail
{

void
emitLine(const char *tag, const std::string &msg)
{
    std::fprintf(stderr, "[%s] %s\n", tag, msg.c_str());
    std::fflush(stderr);
}

bool &
quietFlag()
{
    static bool quiet = false;
    return quiet;
}

} // namespace detail
} // namespace ouro
