#include "rng.hh"

#include <cmath>

#include "logging.hh"

namespace ouro
{

namespace
{

/** SplitMix64 step used to expand a 64-bit seed into generator state. */
std::uint64_t
splitMix64(std::uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &word : s_)
        word = splitMix64(sm);
    // xoshiro must not start from the all-zero state.
    if (!(s_[0] | s_[1] | s_[2] | s_[3]))
        s_[0] = 0x1ULL;
}

std::uint64_t
Rng::rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 random mantissa bits -> [0, 1).
    return (next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::uniformInt(std::uint64_t lo, std::uint64_t hi)
{
    ouroAssert(lo <= hi, "uniformInt: lo > hi");
    const std::uint64_t span = hi - lo + 1;
    if (span == 0) // full 64-bit range
        return next();
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = UINT64_MAX - UINT64_MAX % span;
    std::uint64_t draw;
    do {
        draw = next();
    } while (draw >= limit);
    return lo + draw % span;
}

double
Rng::normal()
{
    if (hasCachedNormal_) {
        hasCachedNormal_ = false;
        return cachedNormal_;
    }
    double u1 = 0.0;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    const double u2 = uniform();
    const double radius = std::sqrt(-2.0 * std::log(u1));
    const double angle = 2.0 * M_PI * u2;
    cachedNormal_ = radius * std::sin(angle);
    hasCachedNormal_ = true;
    return radius * std::cos(angle);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

double
Rng::logNormal(double mu, double sigma)
{
    return std::exp(normal(mu, sigma));
}

bool
Rng::bernoulli(double p)
{
    return uniform() < p;
}

} // namespace ouro
