/**
 * @file
 * Plain-text table printer used by the benchmark harnesses so every
 * reproduced figure/table prints aligned, machine-greppable rows.
 */

#ifndef OURO_COMMON_TABLE_HH
#define OURO_COMMON_TABLE_HH

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace ouro
{

/**
 * Column-aligned table with a header row. Cells are strings; numeric
 * convenience overloads format with a fixed precision.
 */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    /** Begin a new row; subsequent cell() calls append to it. */
    Table &row();

    Table &cell(const std::string &text);
    Table &cell(const char *text);
    Table &cell(double value, int precision = 3);
    Table &cell(std::uint64_t value);
    Table &cell(int value);

    /** Render with column alignment and a separator under the header. */
    void print(std::ostream &os) const;

    std::size_t numRows() const { return rows_.size(); }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with the given precision (helper for ad-hoc rows). */
std::string formatDouble(double value, int precision = 3);

} // namespace ouro

#endif // OURO_COMMON_TABLE_HH
