#include "recovery_service.hh"

#include <algorithm>
#include <limits>

#include "common/logging.hh"

namespace ouro
{

RecoveryService::RecoveryService(
        const WaferMapping &mapping, const NocParams &noc_params,
        Bytes tile_bytes, const DefectMap *defects,
        const RecoveryServiceOptions &opts,
        std::shared_ptr<const CleanRouteTable> clean_routes)
    : geom_(mapping.geometry()), specs_(mapping.layerSpecs()),
      tilesPerBlock_(mapping.tilesPerBlock()),
      firstBlock_(mapping.firstBlock()),
      numBlocks_(mapping.numBlocks()),
      numReplicas_(mapping.numReplicas()), tileBytes_(tile_bytes),
      opts_(opts),
      defects_(defects ? std::optional<DefectMap>(*defects)
                       : std::nullopt),
      cleanRoutes_(clean_routes
                           ? std::move(clean_routes)
                           : std::make_shared<const CleanRouteTable>(
                                     geom_, noc_params)),
      noc_(std::make_unique<MeshNoc>(geom_, noc_params,
                                     defects_ ? &*defects_ : nullptr,
                                     cleanRoutes_)),
      traffic_(*noc_)
{
    regions_.reserve(static_cast<std::size_t>(numReplicas_) *
                     numBlocks_);
    for (std::uint32_t rep = 0; rep < numReplicas_; ++rep) {
        for (std::uint64_t b = 0; b < numBlocks_; ++b) {
            Region region;
            region.replica = rep;
            region.block = firstBlock_ + b;
            region.placement = mapping.placement(region.block, rep);
            if (opts_.useSpatialIndex)
                region.index.emplace(region.placement);
            const std::size_t slot = regions_.size();
            for (const auto *pool : {&region.placement.weightCores,
                                     &region.placement.scoreCores,
                                     &region.placement.contextCores}) {
                for (const CoreCoord &c : *pool) {
                    const bool fresh =
                        owner_.emplace(geom_.coreIndex(c), slot)
                                .second;
                    ouroAssert(fresh, "RecoveryService: core (",
                               c.row, ",", c.col,
                               ") owned by two regions");
                }
            }
            regions_.push_back(std::move(region));
        }
    }
}

RecoveryService::Region &
RecoveryService::region(std::uint64_t block, std::uint32_t replica)
{
    ouroAssert(block >= firstBlock_ &&
                       block < firstBlock_ + numBlocks_ &&
                       replica < numReplicas_,
               "RecoveryService: region (", block, ", ", replica,
               ") not on this wafer");
    return regions_[replica * numBlocks_ + (block - firstBlock_)];
}

const RecoveryService::Region &
RecoveryService::region(std::uint64_t block,
                        std::uint32_t replica) const
{
    return const_cast<RecoveryService *>(this)->region(block,
                                                       replica);
}

const BlockPlacement &
RecoveryService::placement(std::uint64_t block,
                           std::uint32_t replica) const
{
    return region(block, replica).placement;
}

std::uint64_t
RecoveryService::chainKvCores(std::uint32_t replica) const
{
    ouroAssert(replica < numReplicas_, "chainKvCores: replica ",
               replica, " of ", numReplicas_, " not on this wafer");
    std::uint64_t n = 0;
    for (std::uint64_t b = 0; b < numBlocks_; ++b) {
        const auto &p = regions_[replica * numBlocks_ + b].placement;
        n += p.scoreCores.size() + p.contextCores.size();
    }
    return n;
}

std::optional<std::pair<CoreCoord, bool>>
RecoveryService::pickDonorCore(const Region &donor,
                               CoreCoord near) const
{
    if (!opts_.useSpatialIndex) {
        // The retained scan oracle (shared with recoverCoreFailure's
        // no-index path, so both service modes lend the identical
        // core).
        const auto hit = nearestKvScan(donor.placement, near, geom_);
        if (!hit)
            return std::nullopt;
        return std::make_pair(hit->core, hit->scoreDuty);
    }
    const auto hit = donor.index->nearestKv(near);
    if (!hit)
        return std::nullopt;
    const auto &score = donor.placement.scoreCores;
    const bool score_duty =
        std::find(score.begin(), score.end(), hit->core) !=
        score.end();
    return std::make_pair(hit->core, score_duty);
}

bool
RecoveryService::borrowKvCore(Region &dry, CoreCoord near,
                              std::vector<KvBorrow> &borrows)
{
    const std::size_t dry_slot = static_cast<std::size_t>(
            dry.replica * numBlocks_ + (dry.block - firstBlock_));
    // Deterministic nearest-block order within the chain: distance
    // 1, 2, ... from the dry block, the lower-numbered block first
    // on ties. Chains never lend across replicas.
    for (std::uint64_t delta = 1; delta < numBlocks_; ++delta) {
        for (const int sign : {-1, +1}) {
            if (sign < 0 && dry.block < firstBlock_ + delta)
                continue;
            const std::uint64_t donor_block =
                sign < 0 ? dry.block - delta : dry.block + delta;
            if (donor_block >= firstBlock_ + numBlocks_)
                continue;
            Region &donor = region(donor_block, dry.replica);
            const auto lent = pickDonorCore(donor, near);
            if (!lent)
                continue; // this donor is dry too
            const auto [core, score_duty] = *lent;

            const bool removed = removePoolCoord(
                    score_duty ? donor.placement.scoreCores
                               : donor.placement.contextCores,
                    core);
            ouroAssert(removed, "RecoveryService: donor pool lost "
                                "core (", core.row, ",", core.col,
                       ")");
            if (donor.index)
                donor.index->removeKv(core);

            (score_duty ? dry.placement.scoreCores
                        : dry.placement.contextCores)
                    .push_back(core);
            // The dry region's placement gained a core its index was
            // not built over; a rebuild re-derives scan-order
            // sequence numbers from the post-graft pools, keeping
            // the index bit-identical to the scan oracle from here
            // on.
            if (opts_.useSpatialIndex)
                dry.index.emplace(dry.placement);
            owner_[geom_.coreIndex(core)] = dry_slot;

            ++borrowCount_;
            borrows.push_back({dry.replica, donor_block, dry.block,
                               core, score_duty});
            return true;
        }
        if (dry.block < firstBlock_ + delta &&
            dry.block + delta >= firstBlock_ + numBlocks_)
            break; // both directions exhausted
    }
    return false;
}

bool
RecoveryService::priceEdge(std::uint32_t replica,
                           std::uint64_t from_block) const
{
    // Flow from_block -> from_block + 1 of this chain.
    const auto &cur =
        regions_[replica * numBlocks_ + (from_block - firstBlock_)]
                .placement.weightCores;
    const auto &nxt = regions_[replica * numBlocks_ +
                               (from_block + 1 - firstBlock_)]
                              .placement.weightCores;
    return accumulateInterBlockFlows(specs_, tilesPerBlock_, cur,
                                     nxt, *noc_, traffic_);
}

bool
RecoveryService::accumulateChainFlows(std::uint32_t replica) const
{
    for (std::uint64_t b = firstBlock_;
         b + 1 < firstBlock_ + numBlocks_; ++b) {
        if (!priceEdge(replica, b))
            return false;
    }
    return true;
}

void
RecoveryService::markDirtyEdges(std::uint32_t replica,
                                std::uint64_t block)
{
    if (block > firstBlock_)
        dirty_.emplace(replica, block - 1);
    if (block + 1 < firstBlock_ + numBlocks_)
        dirty_.emplace(replica, block);
}

RepriceResult
RecoveryService::priceEdges(
        const std::vector<InterBlockEdge> &edges) const
{
    RepriceResult out;
    out.edges = edges.size();
    // One continuous accumulation over all edges - the same
    // association the eager per-failure path uses, so deferred and
    // eager totals are bit-identical over the same edge list.
    traffic_.clear();
    for (const auto &[replica, from_block] : edges)
        out.flowsRoutable =
            priceEdge(replica, from_block) && out.flowsRoutable;
    out.interBlockByteHops = traffic_.totalEffectiveByteHops();
    return out;
}

RepriceResult
RecoveryService::flushRepricing()
{
    // std::set iterates ascending, so the edge order is the one the
    // eager path uses within a single failure (predecessor edge
    // first) extended deterministically across the storm.
    const std::vector<InterBlockEdge> edges(dirty_.begin(),
                                            dirty_.end());
    dirty_.clear();
    const RepriceResult out = priceEdges(edges);
    repricedEdges_ += out.edges;
    return out;
}

std::vector<InterBlockEdge>
RecoveryService::dirtyEdges() const
{
    return {dirty_.begin(), dirty_.end()};
}

std::optional<FailureOutcome>
RecoveryService::handleCoreFailure(CoreCoord failed)
{
    const std::uint64_t key = geom_.coreIndex(failed);
    const auto it = owner_.find(key);
    if (it == owner_.end())
        return std::nullopt; // embedding core, dead core, or unmapped
    Region &reg = regions_[it->second];

    FailureOutcome out;
    out.replica = reg.replica;
    out.block = reg.block;

    // An owned core with empty KV pools must be a weight core, and
    // its replacement chain has nothing to absorb it - borrow KV
    // capacity from the nearest adjacent block of this chain first.
    if (reg.placement.scoreCores.empty() &&
        reg.placement.contextCores.empty()) {
        if (!opts_.allowKvBorrow ||
            !borrowKvCore(reg, failed, out.borrows))
            return std::nullopt; // whole chain exhausted
    }

    RecoveryIndex *index =
        opts_.useSpatialIndex ? &*reg.index : nullptr;
    const auto result = recoverCoreFailure(reg.placement, failed,
                                           *noc_, tileBytes_, index);
    if (!result)
        return std::nullopt;
    out.remap = *result;
    owner_.erase(key); // the failed core is dead
    ++recoveries_;

    // Mark the inter-block activation flows this region feeds (its
    // predecessor's flow in, its own flow out) dirty - but only when
    // weight tiles actually moved. A KV drop (no moves) leaves every
    // flow endpoint in place, and failure storms are dominated by KV
    // drops, so skipping the unchanged re-pricing is the storm hot
    // path. Eager mode flushes immediately (bit-identical to the
    // historical per-failure re-pricing); deferred mode leaves the
    // marks for one flushRepricing() at storm quiescence.
    if (!out.remap.moves.empty()) {
        markDirtyEdges(reg.replica, reg.block);
        if (!opts_.deferRepricing) {
            const RepriceResult r = flushRepricing();
            out.flowsRoutable = r.flowsRoutable;
            out.interBlockByteHops = r.interBlockByteHops;
        }
    }
    if (observer_)
        observer_(failed, out);
    return out;
}

void
RecoveryService::failLink(CoreCoord from, LinkDir dir)
{
    noc_->failLink(from, dir);
}

std::optional<double>
RecoveryService::chainInterBlockSeconds(std::uint32_t replica) const
{
    ouroAssert(replica < numReplicas_,
               "chainInterBlockSeconds: replica ", replica, " of ",
               numReplicas_, " not on this wafer");
    traffic_.clear();
    if (!accumulateChainFlows(replica))
        return std::nullopt;
    return traffic_.bottleneckSeconds();
}

} // namespace ouro
