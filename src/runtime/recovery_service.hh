/**
 * @file
 * Wafer-level fault-recovery service (paper Section 4.3.3 scaled to
 * whole-wafer failure storms).
 *
 * Before this subsystem existed, recovery was a per-placement affair:
 * every caller built its own RecoveryIndex, owned its own mesh/defect
 * state, and a block whose KV pool ran dry simply failed. The
 * RecoveryService makes the fault domain first-class: it owns
 *
 *  - one mutable BlockPlacement per (replica, block) region, copied
 *    from the WaferMapping at construction (the mapping itself stays
 *    immutable),
 *  - one RecoveryIndex per region (the spatial fast path; the flat
 *    scan oracle is retained behind
 *    RecoveryServiceOptions::useSpatialIndex = false),
 *  - the shared CleanRouteTable and the MeshNoc carrying the wafer's
 *    defect map and failed-link state (failLink() is delegated here),
 *  - a core -> region ownership map covering every weight and KV
 *    core of every chain.
 *
 * handleCoreFailure(core) is the single entry point: it routes the
 * failure to the owning region's index, runs the replacement-chain
 * recovery there, and marks the affected inter-block activation
 * flows of that chain dirty. By default the dirty set is flushed
 * (re-priced through the cached mesh) inside the same call - bit-
 * identical to the historical eager behaviour. With
 * RecoveryServiceOptions::deferRepricing the marks accumulate across
 * a whole failure storm and flushRepricing() prices each distinct
 * edge exactly once at quiescence, cutting storm re-pricing from
 * O(failures x adjacent edges) to O(distinct dirty edges). When a weight-core
 * failure finds the block's KV pool dry, the service borrows a KV
 * core from an adjacent block of the SAME replica chain before
 * retrying - chains never lend across replicas, preserving the
 * fault-domain isolation the replicated-embedding layout establishes.
 *
 * Borrowing is deterministic: donor blocks are visited in
 * nearest-block order (distance 1, 2, ... from the dry block; the
 * lower-numbered block first on ties), the donor's lent core is its
 * nearest KV core to the failed core (the same scan-order tie-break
 * recoverCoreFailure uses), and the core keeps its score/context duty
 * in the borrower's pool. The borrower's index is rebuilt after the
 * graft (a placement gained a core the index was not built over -
 * rebuild is the sanctioned resync), so index and scan stay
 * bit-identical afterwards too.
 *
 * Bit-identity contract: as long as borrowing never triggers, the
 * service's RemapResults are BIT-IDENTICAL to driving the retained
 * per-placement recoverCoreFailure oracle over mirror state - with or
 * without the spatial index - for whole failure sequences across
 * replicas and defect maps. Tests fuzz this and bench_fault_tolerance
 * asserts it on every run.
 */

#ifndef OURO_RUNTIME_RECOVERY_SERVICE_HH
#define OURO_RUNTIME_RECOVERY_SERVICE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

#include "hw/geometry.hh"
#include "hw/params.hh"
#include "hw/yield.hh"
#include "mapping/remap.hh"
#include "mapping/wafer_mapping.hh"
#include "noc/mesh.hh"

namespace ouro
{

struct RecoveryServiceOptions
{
    /** false runs every chain construction on the retained flat-scan
     *  oracle instead of the per-region RecoveryIndex; results are
     *  bit-identical either way (asserted by tests and the bench). */
    bool useSpatialIndex = true;

    /** false restores the pre-service behaviour: a weight-core
     *  failure in a block whose KV pool is dry fails (nullopt)
     *  instead of borrowing from adjacent blocks. */
    bool allowKvBorrow = true;

    /** true batches inter-block re-pricing across a failure storm:
     *  handleCoreFailure only marks the affected edges dirty (its
     *  outcome reports interBlockByteHops = 0) and flushRepricing()
     *  prices each distinct dirty edge exactly once at quiescence.
     *  false (the eager oracle) flushes inside every failure -
     *  bit-identical to the pre-dirty-set behaviour. */
    bool deferRepricing = false;
};

/** One inter-block activation flow, named by its tail: edge
 *  {replica, b} is chain replica's flow block b -> b + 1. */
using InterBlockEdge = std::pair<std::uint32_t, std::uint64_t>;

/** What one flushRepricing() (or priceEdges()) run priced. */
struct RepriceResult
{
    /** Effective byte-hops over all edges priced in this run (one
     *  continuous accumulation, same association as the eager
     *  per-failure path). */
    double interBlockByteHops = 0.0;

    /** Distinct edges priced. */
    std::uint64_t edges = 0;

    /** False when any priced flow became unroutable. */
    bool flowsRoutable = true;
};

/** One KV core lent across blocks of a replica chain. */
struct KvBorrow
{
    std::uint32_t replica = 0;
    std::uint64_t fromBlock = 0; ///< donor
    std::uint64_t toBlock = 0;   ///< the dry block
    CoreCoord core;
    bool scoreDuty = false; ///< duty kept across the graft

    bool operator==(const KvBorrow &other) const = default;
};

/** Everything one handled failure changed. */
struct FailureOutcome
{
    std::uint32_t replica = 0;
    std::uint64_t block = 0;
    RemapResult remap;

    /** KV cores grafted into the block before the chain could
     *  complete (empty when the pool was healthy). */
    std::vector<KvBorrow> borrows;

    /** The affected inter-block activation flows (block-1 -> block,
     *  block -> block+1 of this chain), re-priced over the cached
     *  mesh after the recovery (effective byte-hops, die crossings
     *  weighted by the inter-die penalty). 0 when no weight tile
     *  moved (a KV drop leaves every flow endpoint in place, so
     *  nothing is re-priced) and for single-block chains. Under
     *  deferRepricing this stays 0 - the pricing happens at the
     *  next flushRepricing() instead. */
    double interBlockByteHops = 0.0;

    /** False when a re-priced flow became unroutable (an endpoint
     *  fenced in) - the chain needs remapping, not recovery. Always
     *  true under deferRepricing (routability is reported by
     *  flushRepricing()). */
    bool flowsRoutable = true;
};

class RecoveryService
{
  public:
    /**
     * Build the service over @p mapping. @p defects is copied (the
     * service owns its fault state); @p clean_routes may be shared
     * with other services/sweeps over the same geometry, or null to
     * have the service create its own table. @p tile_bytes prices
     * the replacement-chain moves (one weight tile per hop).
     */
    RecoveryService(const WaferMapping &mapping,
                    const NocParams &noc_params, Bytes tile_bytes,
                    const DefectMap *defects = nullptr,
                    const RecoveryServiceOptions &opts = {},
                    std::shared_ptr<const CleanRouteTable>
                            clean_routes = nullptr);

    /**
     * Handle the failure of @p failed: route it to the owning
     * region, recover (borrowing KV capacity from adjacent blocks of
     * the same chain if the pool is dry), and re-price the affected
     * inter-block flows. Returns std::nullopt when the core is not
     * (or no longer) owned by any region, or when recovery is
     * impossible (the whole chain's KV capacity is exhausted).
     */
    std::optional<FailureOutcome> handleCoreFailure(CoreCoord failed);

    /** Mark a link failed; subsequent routes (and re-pricings)
     *  detour. Delegates to the owned mesh. */
    void failLink(CoreCoord from, LinkDir dir);

    /** The owned mesh (defect map + failed links + route caches). */
    const MeshNoc &noc() const { return *noc_; }

    const std::shared_ptr<const CleanRouteTable> &cleanRoutes() const
    {
        return cleanRoutes_;
    }

    std::uint32_t numReplicas() const { return numReplicas_; }
    std::uint64_t numBlocks() const { return numBlocks_; }
    std::uint64_t firstBlock() const { return firstBlock_; }

    /** Current (post-recovery) placement of a region. */
    const BlockPlacement &placement(std::uint64_t block,
                                    std::uint32_t replica = 0) const;

    /** Dedicated KV cores currently left in one chain. */
    std::uint64_t chainKvCores(std::uint32_t replica) const;

    /**
     * Re-price chain @p replica's full inter-block activation
     * traffic over the current placements and fault state; returns
     * the bottleneck-link time (the steady-state pipeline bound).
     * std::nullopt when a flow is unroutable.
     */
    std::optional<double>
    chainInterBlockSeconds(std::uint32_t replica) const;

    /**
     * Price every currently-dirty inter-block edge exactly once (in
     * ascending (replica, block) order - the same order the eager
     * path visits a single failure's edges) and clear the dirty
     * set. Called internally per failure unless deferRepricing; call
     * it at storm quiescence otherwise. No-op result when the dirty
     * set is empty.
     */
    RepriceResult flushRepricing();

    /** Price exactly @p edges (in the given order) over the current
     *  placements and fault state, without touching the dirty set.
     *  The eager-side comparator for deferred-vs-eager tests and
     *  benches. */
    RepriceResult
    priceEdges(const std::vector<InterBlockEdge> &edges) const;

    /** Edges currently awaiting flushRepricing(), in ascending
     *  order. Always empty outside deferRepricing mode. */
    std::vector<InterBlockEdge> dirtyEdges() const;

    /** Total edges priced by flushRepricing() so far. */
    std::uint64_t repricedEdges() const { return repricedEdges_; }

    /** Failures successfully handled (weight chains + KV drops). */
    std::uint64_t recoveries() const { return recoveries_; }

    /** KV cores borrowed across blocks so far. */
    std::uint64_t borrowCount() const { return borrowCount_; }

    const RecoveryServiceOptions &options() const { return opts_; }

    /**
     * Serving callback surface (PR 9): the observer fires at the end
     * of every SUCCESSFUL handleCoreFailure, after the service's own
     * state (placements, ownership, borrows, dirty edges) is fully
     * updated, with the failed core and the outcome. A serving layer
     * hooks this to mirror placement changes into the live KV pool
     * (drop the dead/absorbed KV cores, adopt the borrowed ones).
     * Failures the service rejects (unowned core, exhausted chain)
     * never fire it. Null disables (the default - pure pre-PR-9
     * behaviour).
     */
    using FailureObserver =
        std::function<void(CoreCoord, const FailureOutcome &)>;
    void setFailureObserver(FailureObserver observer)
    {
        observer_ = std::move(observer);
    }

  private:
    /** One replica-chain region's mutable recovery state. */
    struct Region
    {
        std::uint32_t replica = 0;
        std::uint64_t block = 0; ///< absolute block id
        BlockPlacement placement;
        /** Engaged iff opts_.useSpatialIndex. */
        std::optional<RecoveryIndex> index;
    };

    Region &region(std::uint64_t block, std::uint32_t replica);
    const Region &region(std::uint64_t block,
                         std::uint32_t replica) const;

    /** Graft one KV core from the nearest non-dry adjacent block of
     *  @p dry's chain; returns false when the whole chain is dry. */
    bool borrowKvCore(Region &dry, CoreCoord near,
                      std::vector<KvBorrow> &borrows);

    /** Donor's lent core: nearest KV core to @p near with the
     *  scan-order tie-break (index and scan agree bit for bit). */
    std::optional<std::pair<CoreCoord, bool>>
    pickDonorCore(const Region &donor, CoreCoord near) const;

    /** Accumulate all of chain @p replica's inter-block flows onto
     *  traffic_. False = unroutable. */
    bool accumulateChainFlows(std::uint32_t replica) const;

    /** Accumulate edge {replica, from_block} onto traffic_. False =
     *  unroutable. */
    bool priceEdge(std::uint32_t replica,
                   std::uint64_t from_block) const;

    /** Mark the inter-block edges block @p block feeds (predecessor
     *  flow in, own flow out) dirty for the next flushRepricing(). */
    void markDirtyEdges(std::uint32_t replica, std::uint64_t block);

    WaferGeometry geom_;
    std::vector<LayerSpec> specs_;
    std::uint32_t tilesPerBlock_ = 0;
    std::uint64_t firstBlock_ = 0;
    std::uint64_t numBlocks_ = 0;
    std::uint32_t numReplicas_ = 1;
    Bytes tileBytes_ = 0;
    RecoveryServiceOptions opts_;

    /** The service owns its fault state: the defect map copy, the
     *  shared clean-route table and the mesh overlaying both. */
    std::optional<DefectMap> defects_;
    std::shared_ptr<const CleanRouteTable> cleanRoutes_;
    /** unique_ptr: MeshNoc is not movable-assignable and must be
     *  constructed after defects_/cleanRoutes_. */
    std::unique_ptr<MeshNoc> noc_;

    /** Replica-major, like WaferMapping: regions_[rep * numBlocks_ +
     *  (block - firstBlock_)]. */
    std::vector<Region> regions_;

    /** Core index -> region slot, covering every weight and KV core
     *  of every chain; maintained across recoveries and borrows
     *  (dead cores are erased, borrowed cores re-homed). */
    std::unordered_map<std::uint64_t, std::size_t> owner_;

    /** Reused per-failure accumulator (clear() is O(touched), so one
     *  instance serves a whole failure storm without reallocating
     *  the per-link arrays). */
    mutable TrafficAccumulator traffic_;

    /** Inter-block edges awaiting re-pricing. std::set: ascending
     *  iteration gives flushRepricing() a deterministic edge order,
     *  and duplicate marks across a storm coalesce for free. */
    std::set<InterBlockEdge> dirty_;

    std::uint64_t recoveries_ = 0;
    std::uint64_t borrowCount_ = 0;
    std::uint64_t repricedEdges_ = 0;

    FailureObserver observer_;
};

} // namespace ouro

#endif // OURO_RUNTIME_RECOVERY_SERVICE_HH
